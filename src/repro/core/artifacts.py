"""Persistent, fingerprinted stage artifacts (the campaign workspace).

Generalizes the run cache of :mod:`repro.measure.io` from single
measurements to **every** pipeline stage: each stage's output (static
report, taint report, volumes, classification, design, plan, measurements,
models, findings) serializes to JSON, round-trips bit-identically, and is
stored under a workspace directory keyed by a content fingerprint of
everything that produced it.  A campaign rerun whose upstream fingerprints
are unchanged loads artifacts instead of recomputing — editing only
modeling parameters re-fits models without re-measuring.

Layout: one file per (stage, fingerprint) named ``<stage>-<fp>.json``
holding ``{"stage", "fingerprint", "version", "payload"}``.  Writes are
atomic (temp file + rename), so concurrent campaigns can share a
workspace; the worst case is the same artifact being computed twice,
never a torn read.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile
from typing import Mapping, Sequence

from ..errors import ArtifactError
from ..measure.experiment import ConfigKey, Measurements
from ..measure.instrumentation import InstrumentationMode, InstrumentationPlan
from ..measure.io import (
    measurements_from_dict,
    measurements_to_dict,
    model_from_dict,
    model_to_dict,
    profile_from_dict,
    profile_to_dict,
)
from ..measure.profiler import ProfileResult
from ..modeling.modeler import SearchPrior
from ..staticanalysis.prune import FunctionStaticInfo, StaticReport
from ..taint.report import TaintReport
from ..volume.depclass import DependencyClass, ProgramDependencies
from ..volume.loopnest import VolumeReport
from ..volume.symbolic import LoopCount, Term, Volume
from .classify import Classification
from .experiment_design import DesignDecision
from .hybrid import ModelComparison
from .validation import ContentionFinding

#: Version of the artifact payload format; bump to invalidate workspaces.
ARTIFACT_VERSION = 1


def artifact_fingerprint(payload: object) -> str:
    """Content fingerprint of any JSON-able payload (canonical form)."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


# ----------------------------------------------------------------------
# per-artifact serialization
#
# Conventions: frozensets become sorted lists; tuple keys are flattened
# into the records that carried them; insertion order of dicts is
# preserved (JSON objects/lists keep order) so a load-then-save cycle is
# byte-identical.


def static_report_to_dict(report: StaticReport) -> dict:
    """JSON-able representation of a static-analysis report."""
    return {
        "functions": {
            name: {
                "loops_total": info.loops_total,
                "loops_static": info.loops_static,
                "static_trip_counts": {
                    str(k): int(v)
                    for k, v in sorted(info.static_trip_counts.items())
                },
                "relevant_library_calls": sorted(
                    info.relevant_library_calls
                ),
                "is_recursive": info.is_recursive,
                "irreducible": info.irreducible,
            }
            for name, info in report.functions.items()
        },
        "warnings": list(report.warnings),
    }


def static_report_from_dict(payload: Mapping) -> StaticReport:
    """Inverse of :func:`static_report_to_dict`."""
    functions = {
        name: FunctionStaticInfo(
            name=name,
            loops_total=int(entry["loops_total"]),
            loops_static=int(entry["loops_static"]),
            static_trip_counts={
                int(k): int(v)
                for k, v in entry["static_trip_counts"].items()
            },
            relevant_library_calls=frozenset(
                entry["relevant_library_calls"]
            ),
            is_recursive=bool(entry["is_recursive"]),
            irreducible=bool(entry["irreducible"]),
        )
        for name, entry in payload["functions"].items()
    }
    return StaticReport(
        functions=functions, warnings=list(payload["warnings"])
    )


def taint_report_to_dict(report: TaintReport) -> dict:
    """JSON-able representation of a taint report."""
    return {
        "parameters": list(report.parameters),
        "loops": [
            {
                "callpath": list(cp),
                "function": rec.function,
                "loop_id": rec.loop_id,
                "params": sorted(rec.params),
                "iterations": rec.iterations,
                "entries": rec.entries,
            }
            for (cp, _fn, _lid), rec in report.loop_records.items()
        ],
        "branches": [
            {
                "callpath": list(cp),
                "function": rec.function,
                "branch_id": rec.branch_id,
                "params": sorted(rec.params),
                "directions": sorted(rec.directions),
            }
            for (cp, _fn, _bid), rec in report.branch_records.items()
        ],
        "library": [
            {
                "callpath": list(cp),
                "caller": rec.caller,
                "routine": rec.routine,
                "params": sorted(rec.params),
                "calls": rec.calls,
            }
            for (cp, _rt), rec in report.library_records.items()
        ],
        "warnings": list(report.warnings),
        "executed_functions": sorted(report.executed_functions),
    }


def taint_report_from_dict(payload: Mapping) -> TaintReport:
    """Inverse of :func:`taint_report_to_dict`."""
    report = TaintReport(
        parameters=tuple(payload["parameters"]),
        executed_functions=frozenset(payload["executed_functions"]),
    )
    for entry in payload["loops"]:
        cp = tuple(entry["callpath"])
        report.record_loop(
            cp,
            entry["function"],
            int(entry["loop_id"]),
            frozenset(entry["params"]),
            int(entry["iterations"]),
        )
        report.loop_records[
            (cp, entry["function"], int(entry["loop_id"]))
        ].entries = int(entry["entries"])
    for entry in payload["branches"]:
        cp = tuple(entry["callpath"])
        for direction in entry["directions"]:
            report.record_branch(
                cp,
                entry["function"],
                int(entry["branch_id"]),
                frozenset(entry["params"]),
                bool(direction),
            )
    for entry in payload["library"]:
        cp = tuple(entry["callpath"])
        report.record_library(
            cp, entry["caller"], entry["routine"], frozenset(entry["params"])
        )
        report.library_records[(cp, entry["routine"])].calls = int(
            entry["calls"]
        )
    for warning in payload["warnings"]:
        report.warn(warning)
    return report


def volume_to_dict(volume: Volume) -> list:
    """JSON-able representation of a symbolic volume (canonical order)."""
    return [
        {
            "coefficient": float(term.coefficient),
            "factors": [
                {
                    "function": f.function,
                    "loop_id": f.loop_id,
                    "params": sorted(f.params),
                }
                for f in term.factors
            ],
        }
        for term in volume.terms
    ]


def volume_from_dict(payload: Sequence) -> Volume:
    """Inverse of :func:`volume_to_dict`."""
    return Volume(
        Term(
            float(entry["coefficient"]),
            tuple(
                LoopCount(
                    function=f["function"],
                    loop_id=int(f["loop_id"]),
                    params=frozenset(f["params"]),
                )
                for f in entry["factors"]
            ),
        )
        for entry in payload
    )


def volume_report_to_dict(report: VolumeReport) -> dict:
    """JSON-able representation of a volume report."""
    return {
        "inclusive": {
            fn: volume_to_dict(v) for fn, v in report.inclusive.items()
        },
        "exclusive": {
            fn: volume_to_dict(v) for fn, v in report.exclusive.items()
        },
        "program": volume_to_dict(report.program),
        "warnings": list(report.warnings),
    }


def volume_report_from_dict(payload: Mapping) -> VolumeReport:
    """Inverse of :func:`volume_report_to_dict`."""
    return VolumeReport(
        inclusive={
            fn: volume_from_dict(v) for fn, v in payload["inclusive"].items()
        },
        exclusive={
            fn: volume_from_dict(v) for fn, v in payload["exclusive"].items()
        },
        program=volume_from_dict(payload["program"]),
        warnings=list(payload["warnings"]),
    )


def _dependency_class_to_dict(dep: DependencyClass) -> dict:
    return {
        "params": sorted(dep.params),
        "multiplicative_groups": [
            sorted(g) for g in dep.multiplicative_groups
        ],
        "multiplicative_pairs": sorted(
            sorted(pair) for pair in dep.multiplicative_pairs
        ),
    }


def _dependency_class_from_dict(payload: Mapping) -> DependencyClass:
    return DependencyClass(
        params=frozenset(payload["params"]),
        multiplicative_groups=tuple(
            frozenset(g) for g in payload["multiplicative_groups"]
        ),
        multiplicative_pairs=frozenset(
            frozenset(pair) for pair in payload["multiplicative_pairs"]
        ),
    )


def dependencies_to_dict(deps: ProgramDependencies) -> dict:
    """JSON-able representation of program dependency classes."""
    return {
        "per_function": {
            fn: _dependency_class_to_dict(dep)
            for fn, dep in deps.per_function.items()
        },
        "program": (
            _dependency_class_to_dict(deps.program)
            if deps.program is not None
            else None
        ),
    }


def dependencies_from_dict(payload: Mapping) -> ProgramDependencies:
    """Inverse of :func:`dependencies_to_dict`."""
    return ProgramDependencies(
        per_function={
            fn: _dependency_class_from_dict(dep)
            for fn, dep in payload["per_function"].items()
        },
        program=(
            _dependency_class_from_dict(payload["program"])
            if payload["program"] is not None
            else None
        ),
    )


def classification_to_dict(classification: Classification) -> dict:
    """JSON-able representation of the function classification."""
    return {
        "pruned_static": sorted(classification.pruned_static),
        "pruned_dynamic": sorted(classification.pruned_dynamic),
        "kernels": sorted(classification.kernels),
        "comm_routines": sorted(classification.comm_routines),
        "mpi_functions": sorted(classification.mpi_functions),
        "unexecuted": sorted(classification.unexecuted),
        "loops_total": classification.loops_total,
        "loops_pruned_static": classification.loops_pruned_static,
        "loops_relevant": classification.loops_relevant,
        "per_function_params": {
            fn: sorted(params)
            for fn, params in classification.per_function_params.items()
        },
    }


def classification_from_dict(payload: Mapping) -> Classification:
    """Inverse of :func:`classification_to_dict`."""
    return Classification(
        pruned_static=frozenset(payload["pruned_static"]),
        pruned_dynamic=frozenset(payload["pruned_dynamic"]),
        kernels=frozenset(payload["kernels"]),
        comm_routines=frozenset(payload["comm_routines"]),
        mpi_functions=frozenset(payload["mpi_functions"]),
        unexecuted=frozenset(payload["unexecuted"]),
        loops_total=int(payload["loops_total"]),
        loops_pruned_static=int(payload["loops_pruned_static"]),
        loops_relevant=int(payload["loops_relevant"]),
        per_function_params={
            fn: frozenset(params)
            for fn, params in payload["per_function_params"].items()
        },
    )


def design_to_dict(design: DesignDecision) -> dict:
    """JSON-able representation of a design decision."""
    return {
        "configurations": [
            {name: float(v) for name, v in cfg.items()}
            for cfg in design.configurations
        ],
        "kept_parameters": list(design.kept_parameters),
        "pruned_parameters": list(design.pruned_parameters),
        "collapsed_parameters": list(design.collapsed_parameters),
        "strategy": design.strategy,
        "naive_size": design.naive_size,
        "notes": list(design.notes),
    }


def design_from_dict(payload: Mapping) -> DesignDecision:
    """Inverse of :func:`design_to_dict`."""
    return DesignDecision(
        configurations=[
            {name: float(v) for name, v in cfg.items()}
            for cfg in payload["configurations"]
        ],
        kept_parameters=tuple(payload["kept_parameters"]),
        pruned_parameters=tuple(payload["pruned_parameters"]),
        collapsed_parameters=tuple(payload["collapsed_parameters"]),
        strategy=payload["strategy"],
        naive_size=int(payload["naive_size"]),
        notes=list(payload["notes"]),
    )


def plan_to_dict(plan: InstrumentationPlan) -> dict:
    """JSON-able representation of an instrumentation plan."""
    return {
        "mode": plan.mode.value,
        "functions": sorted(plan.functions),
        "overhead_per_call": float(plan.overhead_per_call),
    }


def plan_from_dict(payload: Mapping) -> InstrumentationPlan:
    """Inverse of :func:`plan_to_dict`."""
    return InstrumentationPlan(
        InstrumentationMode(payload["mode"]),
        frozenset(payload["functions"]),
        float(payload["overhead_per_call"]),
    )


def measure_bundle_to_dict(
    measurements: Measurements,
    profiles: Mapping[ConfigKey, ProfileResult],
) -> dict:
    """JSON-able representation of the measurement stage's output."""
    return {
        "measurements": measurements_to_dict(measurements),
        "profiles": [
            {"config": [float(v) for v in key], "profile": profile_to_dict(p)}
            for key, p in profiles.items()
        ],
    }


def measure_bundle_from_dict(
    payload: Mapping,
) -> tuple[Measurements, dict[ConfigKey, ProfileResult]]:
    """Inverse of :func:`measure_bundle_to_dict`."""
    measurements = measurements_from_dict(payload["measurements"])
    profiles = {
        tuple(float(v) for v in entry["config"]): profile_from_dict(
            entry["profile"]
        )
        for entry in payload["profiles"]
    }
    return measurements, profiles


def _prior_to_dict(prior: SearchPrior | None) -> dict | None:
    if prior is None:
        return None
    return {
        "forced_constant": prior.forced_constant,
        "allowed_params": (
            sorted(prior.allowed_params)
            if prior.allowed_params is not None
            else None
        ),
        "multiplicative_pairs": (
            sorted(sorted(pair) for pair in prior.multiplicative_pairs)
            if prior.multiplicative_pairs is not None
            else None
        ),
    }


def _prior_from_dict(payload: Mapping | None) -> SearchPrior | None:
    if payload is None:
        return None
    return SearchPrior(
        forced_constant=bool(payload["forced_constant"]),
        allowed_params=(
            frozenset(payload["allowed_params"])
            if payload["allowed_params"] is not None
            else None
        ),
        multiplicative_pairs=(
            frozenset(
                frozenset(pair)
                for pair in payload["multiplicative_pairs"]
            )
            if payload["multiplicative_pairs"] is not None
            else None
        ),
    )


def models_to_dict(models: Mapping[str, ModelComparison]) -> dict:
    """JSON-able representation of the per-function model comparisons."""
    return {
        fn: {
            "hybrid": model_to_dict(cmp.hybrid),
            "black_box": (
                model_to_dict(cmp.black_box)
                if cmp.black_box is not None
                else None
            ),
            "prior": _prior_to_dict(cmp.prior),
        }
        for fn, cmp in models.items()
    }


def models_from_dict(payload: Mapping) -> dict[str, ModelComparison]:
    """Inverse of :func:`models_to_dict`."""
    return {
        fn: ModelComparison(
            function=fn,
            hybrid=model_from_dict(entry["hybrid"]),
            black_box=(
                model_from_dict(entry["black_box"])
                if entry["black_box"] is not None
                else None
            ),
            prior=_prior_from_dict(entry["prior"]),
        )
        for fn, entry in payload.items()
    }


def findings_to_dict(findings: Sequence[ContentionFinding]) -> list:
    """JSON-able representation of the contention findings."""
    return [
        {
            "function": f.function,
            "model": f.model,
            "spurious_params": sorted(f.spurious_params),
            "max_cov": float(f.max_cov),
        }
        for f in findings
    ]


def findings_from_dict(payload: Sequence) -> list[ContentionFinding]:
    """Inverse of :func:`findings_to_dict`."""
    return [
        ContentionFinding(
            function=entry["function"],
            model=entry["model"],
            spurious_params=frozenset(entry["spurious_params"]),
            max_cov=float(entry["max_cov"]),
        )
        for entry in payload
    ]


# ----------------------------------------------------------------------
# the workspace store


class ArtifactStore:
    """On-disk store of fingerprinted stage artifacts (the *workspace*).

    The RunCache pattern of :mod:`repro.measure.io` applied to whole
    stages: content-addressed JSON files, atomic writes, corrupt entries
    treated as misses.
    """

    def __init__(self, root: "str | pathlib.Path") -> None:
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, stage: str, fingerprint: str) -> pathlib.Path:
        return self.root / f"{stage}-{fingerprint}.json"

    def __contains__(self, key: tuple[str, str]) -> bool:
        stage, fingerprint = key
        return self._path(stage, fingerprint).exists()

    def get(self, stage: str, fingerprint: str) -> object | None:
        """The stored payload, or None on a miss or a corrupt entry."""
        path = self._path(stage, fingerprint)
        try:
            envelope = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if (
            not isinstance(envelope, dict)
            or envelope.get("version") != ARTIFACT_VERSION
            or envelope.get("stage") != stage
            or envelope.get("fingerprint") != fingerprint
            or "payload" not in envelope
        ):
            return None
        return envelope["payload"]

    def put(self, stage: str, fingerprint: str, payload: object) -> None:
        """Store *payload* atomically under (*stage*, *fingerprint*)."""
        envelope = {
            "version": ARTIFACT_VERSION,
            "stage": stage,
            "fingerprint": fingerprint,
            "payload": payload,
        }
        try:
            text = json.dumps(envelope, indent=1)
        except (TypeError, ValueError) as exc:
            raise ArtifactError(
                f"artifact of stage '{stage}' is not JSON-serializable: "
                f"{exc}"
            ) from exc
        path = self._path(stage, fingerprint)
        fd, tmp = tempfile.mkstemp(
            dir=self.root, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def stages(self) -> dict[str, list[str]]:
        """stage name -> stored fingerprints (for inspection/tests)."""
        out: dict[str, list[str]] = {}
        for path in sorted(self.root.glob("*-*.json")):
            stage, _, fingerprint = path.stem.rpartition("-")
            if stage:
                out.setdefault(stage, []).append(fingerprint)
        return out

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*-*.json"))
