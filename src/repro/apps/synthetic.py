"""Small synthetic programs from the paper's running examples.

Used by tests, the quickstart example, and the ablation benchmarks.  Each
builder returns a finalized program whose taint behaviour is known in
closed form.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..interp.config import DEFAULT_CONFIG, ExecConfig
from ..ir.builder import (
    ProgramBuilder,
    add,
    call,
    load,
    lt,
    mod,
    mul,
    var,
)
from ..ir.program import Program
from ..measure.experiment import RunSetup
from ..measure.parallel import WorkloadSpec
from ..mpisim.network import DEFAULT_NETWORK, NetworkModel
from ..mpisim.runtime import MPIConfig, MPIRuntime
from ..registry import register_workload


def build_foo_example() -> Program:
    """The section A1 example::

        int foo(int a, int b, int &result) {
            for (int i = 0; i < a; ++i) result += b * i;
        }

    Parameter ``a`` bounds the loop; ``b`` only scales the arithmetic, so
    taint prunes ``b``.
    """
    pb = ProgramBuilder()
    with pb.function("foo", ["a", "b"]) as f:
        f.assign("result", 0)
        with f.for_("i", 0, f.var("a")):
            f.assign("result", add(var("result"), mul(var("b"), var("i"))))
            # Per-iteration work large enough that even the smallest sweep
            # configuration clears the measurement-noise floor (CoV screen).
            f.work(2000.0)
        f.ret(f.var("result"))
    with pb.function("main", ["a", "b"]) as f:
        f.assign("out", call("foo", var("a"), var("b")))
        f.ret(f.var("out"))
    return pb.build(entry="main")


def build_additive_example() -> Program:
    """The section A2 example: two sequenced loops, one per parameter —
    a purely additive dependency (p + s, not p * s)."""
    pb = ProgramBuilder()
    with pb.function("bar1", ["i"]) as f:
        f.work(7.0)
    with pb.function("bar2", ["i"]) as f:
        f.work(11.0)
    with pb.function("foo", ["p", "s"]) as f:
        with f.for_("i", 0, f.var("p")):
            f.call("bar1", f.var("i"))
        with f.for_("i", 0, f.var("s")):
            f.call("bar2", f.var("i"))
    with pb.function("main", ["p", "s"]) as f:
        f.call("foo", f.var("p"), f.var("s"))
    return pb.build(entry="main")


def build_multiplicative_example() -> Program:
    """Nested loops: a multiplicative p x s dependency."""
    pb = ProgramBuilder()
    with pb.function("kernel", ["p", "s"]) as f:
        with f.for_("i", 0, f.var("p")):
            with f.for_("j", 0, f.var("s")):
                f.work(3.0)
    with pb.function("main", ["p", "s"]) as f:
        f.call("kernel", f.var("p"), f.var("s"))
    return pb.build(entry="main")


def build_control_flow_example() -> Program:
    """The section 5.2 LULESH excerpt: ``regElemSize`` gains its ``size``
    dependence only through control flow::

        for (Index_t i = 0; i < numElem(); ++i) {
            int r = regNumList(i) - 1;
            regElemSize(r)++;
        }

    A later loop bounded by ``regElemSize[r]`` therefore depends on
    ``size`` — but only when control-flow propagation is enabled.
    """
    pb = ProgramBuilder()
    with pb.function("main", ["size", "regions"]) as f:
        f.assign("numElem", mul(var("size"), var("size")))
        f.alloc("regElemSize", f.var("regions"))
        with f.for_("i", 0, f.var("numElem")):
            f.assign("r", mod(var("i"), var("regions")))
            f.store(
                "regElemSize",
                f.var("r"),
                add(load("regElemSize", var("r")), 1),
            )
        with f.for_("r", 0, f.var("regions")):
            f.assign("n", load("regElemSize", var("r")))
            with f.for_("e", 0, f.var("n")):
                f.work(4.0)
    return pb.build(entry="main")


def build_algorithm_selection_example() -> Program:
    """The section C2 example: a parameter selects between a linear and a
    logarithmic kernel::

        if (a < 4) kernel_linear(a); else kernel_log(a);
    """
    pb = ProgramBuilder()
    with pb.function("kernel_linear", ["a"]) as f:
        with f.for_("i", 0, f.var("a")):
            f.work(10.0)
    with pb.function("kernel_log", ["a"]) as f:
        from ..ir.builder import log2

        with f.for_("i", 0, log2(var("a"))):
            f.work(10.0)
    with pb.function("main", ["a"]) as f:
        with f.if_(lt(var("a"), 4)):
            f.call("kernel_linear", f.var("a"))
        with f.else_():
            f.call("kernel_log", f.var("a"))
    return pb.build(entry="main")


def build_contention_example() -> Program:
    """The section C1 example: a memory-bound kernel with no dependence on
    anything but its own size — co-location effects must come from the
    machine, not the code."""
    pb = ProgramBuilder()
    with pb.function("memory_bound", ["n"], kind="kernel") as f:
        with f.for_("i", 0, f.var("n")):
            f.mem_work(20.0)
    with pb.function("compute_bound", ["n"], kind="kernel") as f:
        with f.for_("i", 0, f.var("n")):
            f.work(20.0)
    with pb.function("main", ["n"]) as f:
        f.call("memory_bound", f.var("n"))
        f.call("compute_bound", f.var("n"))
    return pb.build(entry="main")


@dataclass
class SyntheticWorkload:
    """Wrap any synthetic program as a measurable workload.

    ``arg_map`` maps config parameters to entry arguments (identity by
    default); ``p`` and ``r`` configure the MPI runtime when present.
    """

    builder: object
    parameters: tuple[str, ...]
    defaults: Mapping[str, float] = field(default_factory=dict)
    name: str = "synthetic"
    network: NetworkModel = DEFAULT_NETWORK
    exec_config: ExecConfig = DEFAULT_CONFIG

    def __post_init__(self) -> None:
        self._program: Program | None = None

    def program(self) -> Program:  # noqa: D102
        if self._program is None:
            self._program = self.builder()
        return self._program

    def setup(self, config: Mapping[str, float]) -> RunSetup:  # noqa: D102
        merged = dict(self.defaults)
        merged.update(config)
        entry = self.program().function(self.program().entry)
        runtime = MPIRuntime(
            MPIConfig(
                ranks=int(merged.get("p", 1)),
                ranks_per_node=int(merged.get("r", 1)),
                network=self.network,
            )
        )
        args = {name: merged[name] for name in entry.params}
        return RunSetup(
            args=args,
            runtime=runtime,
            ranks_per_node=int(merged.get("r", 1)),
            exec_config=self.exec_config,
        )

    def taint_config(self) -> dict[str, float]:  # noqa: D102
        entry = self.program().function(self.program().entry)
        cfg = {name: 4.0 for name in entry.params}
        cfg.update({k: float(v) for k, v in self.defaults.items()})
        return cfg

    def sources(self) -> dict[str, str]:  # noqa: D102
        entry = self.program().function(self.program().entry)
        return {name: name for name in entry.params}

    def spec(self) -> WorkloadSpec:
        """Picklable recipe for rebuilding this workload in a worker.

        Valid whenever ``builder`` is a module-level callable (all the
        builders in this module are); the cached program is deliberately
        left out so workers rebuild it locally.
        """
        return WorkloadSpec(
            factory=SyntheticWorkload,
            kwargs={
                "builder": self.builder,
                "parameters": self.parameters,
                "defaults": dict(self.defaults),
                "name": self.name,
                "network": self.network,
                "exec_config": self.exec_config,
            },
        )


@register_workload("synthetic", params=("p", "s"))
def make_scaling_workload(
    parameters: tuple[str, ...] | None = None,
) -> SyntheticWorkload:
    """The synthetic app used by the parallel-scaling benchmark and the
    CLI ``sweep`` smoke test: a multiplicative ``p x s`` kernel.

    Module-level so the resulting workload's spec pickles by reference
    into pool workers.
    """
    return SyntheticWorkload(
        builder=build_multiplicative_example,
        parameters=tuple(parameters) if parameters else ("p", "s"),
        name="synthetic",
    )
