"""Workloads: LULESH and MILC mini-apps plus synthetic examples."""

from .lulesh import LuleshWorkload, build_lulesh
from .milc import MilcWorkload, build_milc
from .synthetic import (
    SyntheticWorkload,
    build_additive_example,
    build_algorithm_selection_example,
    build_contention_example,
    build_control_flow_example,
    build_foo_example,
    build_multiplicative_example,
)

__all__ = [
    "LuleshWorkload",
    "MilcWorkload",
    "SyntheticWorkload",
    "build_additive_example",
    "build_algorithm_selection_example",
    "build_contention_example",
    "build_control_flow_example",
    "build_foo_example",
    "build_lulesh",
    "build_milc",
    "build_multiplicative_example",
]
