"""A structurally faithful LULESH 2.0 mini-app (paper section 6).

LULESH is "a scientific application written in C++, implementing stencil
computations for a hydrodynamic shock problem on a three-dimensional mesh.
The code is structured around the main class Domain and contains multiple
simple methods" whose "expected constant computational effort is hard to
capture empirically".

This mini-app mirrors the structure that drives every LULESH result in the
paper:

* hundreds of tiny constant accessors on the Domain (generated, like the
  C++ class generates them) — the instrumentation-overhead story (Fig. 3);
* ~30 computational kernels looping over ``numElem = size^3`` per-rank
  elements (weak scaling, ``-s`` semantics), several memory-bound — the
  contention story (Fig. 5 / C1);
* six input parameters ``size, regions, balance, cost, iters`` plus the
  implicit ``p`` — the parameter-pruning story (Table 3, A1/A2);
* ``CalcQForElems`` with a compact body and a conservative multiplicative
  (p, size) pack loop — the intrusion story (B2) and the default-filter
  false negative;
* the ``regNumList``/``regElemSize`` control-flow dependence of section
  5.2 (``SetupRegionSizes``) — the control-flow-taint ablation;
* communication wrappers over the simulated MPI (CommSBN, CommMonoQ,
  TimeIncrement's allreduce, a hand-rolled reduction with a log2(p) loop).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..interp.config import DEFAULT_CONFIG, ExecConfig
from ..ir.builder import (
    ProgramBuilder,
    add,
    call,
    floordiv,
    load,
    log2,
    mod,
    mul,
    pow_,
    sub,
    var,
)
from ..ir.program import Program
from ..measure.experiment import RunSetup
from ..measure.parallel import WorkloadSpec
from ..mpisim.network import DEFAULT_NETWORK, NetworkModel
from ..mpisim.runtime import MPIConfig, MPIRuntime
from ..registry import register_workload
from .common import (
    add_accessor,
    add_dynamic_helper,
    add_medium_accessor,
    add_rank_query_wrapper,
    add_static_helper,
    add_wide_constant_helper,
)

#: Domain fields: each yields a generated get/set accessor pair.
DOMAIN_FIELDS = (
    "x y z xd yd zd xdd ydd zdd fx fy fz nodalMass symmX symmY symmZ "
    "e p q ql qq v volo new_volo delv vdov arealg ss elemMass nodelist "
    "lxim lxip letam letap lzetam lzetap elemBC dxx dyy dzz delv_xi "
    "delv_eta delv_zeta delx_xi delx_eta delx_zeta vnew regNumList"
).split()

_N_STATIC_HELPERS = 150
_N_WIDE_HELPERS = 30
_N_DYNAMIC_HELPERS = 11
_SETUP_GROUP = 25


#: Per-element geometry helpers: straight-line but sizeable bodies, so the
#: default Score-P filter instruments them although they are constant (the
#: moderate default-filter overhead of Figure 3's middle panel).
ELEM_HELPERS = (
    "CalcElemShapeFunctionDerivatives",
    "CalcElemNodeNormals",
    "SumElemStressesToNodeForces",
    "CalcElemVelocityGradient",
    "CalcElemCharacteristicLength",
    "VoluDer",
)


def _add_accessors(pb: ProgramBuilder) -> list[str]:
    names: list[str] = []
    for fld in DOMAIN_FIELDS:
        for prefix in ("get", "set"):
            name = f"domain_{prefix}_{fld}"
            add_accessor(pb, name, cost=1.0)
            names.append(name)
    for name in ELEM_HELPERS:
        add_medium_accessor(pb, name, cost=3.0, statements=9)
        names.append(name)
    return names


def _add_helpers(pb: ProgramBuilder) -> tuple[list[str], list[str]]:
    """Generated constant helpers; returns (no-arg names, one-arg names)."""
    noarg: list[str] = []
    onearg: list[str] = []
    families = (
        "SetupElemConnectivity",
        "SetupBoundaryCondition",
        "InitQuadraturePoint",
        "AllocateField",
        "VerifyMesh",
    )
    per_family = _N_STATIC_HELPERS // len(families)
    for family in families:
        for i in range(per_family):
            name = f"{family}_{i}"
            add_static_helper(pb, name, trip=4 + (i % 5), cost=1.0 + i % 3)
            noarg.append(name)
    for i in range(_N_WIDE_HELPERS):
        name = f"BuildMeshTopology_{i}"
        add_wide_constant_helper(pb, name, statements=8 + i % 4)
        onearg.append(name)
    for i in range(_N_DYNAMIC_HELPERS):
        name = f"ResizeBuffer_{i}"
        add_dynamic_helper(pb, name, cost=2.0)
        onearg.append(name)
    for name in ("GetMyRank", "LogRank", "DebugRank", "TraceRank"):
        add_rank_query_wrapper(pb, name)
        noarg.append(name)
    return noarg, onearg


def _add_setup_callers(
    pb: ProgramBuilder,
    accessors: list[str],
    noarg: list[str],
    onearg: list[str],
) -> list[str]:
    """Setup functions that execute every generated helper once, so the
    taint run observes them (dynamic pruning needs execution)."""
    calls: list[tuple[str, bool]] = (
        [(n, True) for n in accessors]
        + [(n, False) for n in noarg]
        + [(n, True) for n in onearg]
    )
    names: list[str] = []
    for start in range(0, len(calls), _SETUP_GROUP):
        chunk = calls[start : start + _SETUP_GROUP]
        name = f"SetupDomain_{start // _SETUP_GROUP}"
        with pb.function(name, [], kind="helper") as f:
            for callee, takes_arg in chunk:
                if takes_arg:
                    f.call(callee, 6.0)
                else:
                    f.call(callee)
        names.append(name)
    return names


def _elem_kernel(
    pb: ProgramBuilder,
    name: str,
    accessor_calls: "list[str]",
    work_amount: float,
    mem_amount: float = 0.0,
    extra_statements: int = 0,
) -> None:
    """A kernel looping over numElem with accessor calls and cost sinks.

    *extra_statements* pads the body with constant assignments so the
    default Score-P size filter keeps the kernel (>6 statements); compact
    kernels without padding are skipped by it (the B2 false negative).
    """
    with pb.function(name, ["numElem"], kind="kernel") as f:
        for k in range(extra_statements):
            f.assign(f"c{k}", float(k))
        with f.for_("i", 0, f.var("numElem")):
            for acc in accessor_calls:
                f.call(acc, f.var("i"))
            if work_amount:
                f.work(work_amount)
            if mem_amount:
                f.mem_work(mem_amount)


def build_lulesh() -> Program:
    """Build the LULESH mini-app program."""
    pb = ProgramBuilder()

    accessors = _add_accessors(pb)
    noarg, onearg = _add_helpers(pb)
    setup_names = _add_setup_callers(pb, accessors, noarg, onearg)

    # -- leaf element kernels (loop over numElem) -----------------------

    _elem_kernel(
        pb,
        "InitStressTermsForElems",
        ["domain_get_p", "domain_get_q"],
        work_amount=6.0,
        extra_statements=5,
    )
    _elem_kernel(
        pb,
        "IntegrateStressForElems",
        [
            "domain_get_x",
            "domain_get_y",
            "domain_get_z",
            "CalcElemShapeFunctionDerivatives",
            "SumElemStressesToNodeForces",
        ],
        work_amount=24.0,
        mem_amount=40.0,
        extra_statements=6,
    )
    _elem_kernel(
        pb,
        "CalcFBHourglassForceForElems",
        ["domain_get_xd", "domain_get_yd", "domain_get_zd"],
        work_amount=40.0,
        mem_amount=30.0,
        extra_statements=6,
    )
    _elem_kernel(
        pb,
        "CalcKinematicsForElems",
        [
            "domain_get_v",
            "domain_get_volo",
            "CalcElemVelocityGradient",
            "CalcElemCharacteristicLength",
        ],
        work_amount=30.0,
        extra_statements=5,
    )
    _elem_kernel(
        pb,
        "CalcMonotonicQGradientsForElems",
        ["domain_get_delv_xi", "domain_get_delv_eta"],
        work_amount=18.0,
        mem_amount=34.0,
        extra_statements=5,
    )
    _elem_kernel(
        pb,
        "UpdateVolumesForElems",
        ["domain_get_vnew", "domain_set_v"],
        work_amount=4.0,
        mem_amount=14.0,
    )
    _elem_kernel(
        pb,
        "CalcCourantConstraintForElems",
        ["domain_get_ss", "domain_get_arealg"],
        work_amount=8.0,
        extra_statements=5,
    )
    _elem_kernel(
        pb,
        "CalcHydroConstraintForElems",
        ["domain_get_vdov"],
        work_amount=6.0,
        extra_statements=5,
    )

    # CalcHourglassControlForElems: memory-bound (Figure 5 headline).
    with pb.function(
        "CalcHourglassControlForElems", ["numElem"], kind="kernel"
    ) as f:
        for k in range(5):
            f.assign(f"c{k}", float(k))
        with f.for_("i", 0, f.var("numElem")):
            f.call("domain_get_x", f.var("i"))
            f.call("domain_get_volo", f.var("i"))
            f.call("VoluDer", f.var("i"))
            f.mem_work(110.0)
            f.work(10.0)
        f.call("CalcFBHourglassForceForElems", f.var("numElem"))

    # -- node kernels (loop over numNode ~ (size+1)^3) -------------------

    for name, wrk, mem, pad in (
        ("CalcAccelerationForNodes", 6.0, 40.0, 5),
        ("CalcVelocityForNodes", 8.0, 22.0, 5),
        ("CalcPositionForNodes", 6.0, 26.0, 5),
    ):
        with pb.function(name, ["numNode"], kind="kernel") as f:
            for k in range(pad):
                f.assign(f"c{k}", float(k))
            with f.for_("i", 0, f.var("numNode")):
                f.work(wrk)
                f.mem_work(mem)

    # Boundary conditions: loop over a face (size^2 nodes).
    with pb.function(
        "ApplyAccelerationBoundaryConditionsForNodes",
        ["size"],
        kind="kernel",
    ) as f:
        f.assign("faceNodes", mul(add(var("size"), 1), add(var("size"), 1)))
        with f.for_("i", 0, f.var("faceNodes")):
            f.call("domain_get_symmX", f.var("i"))
            f.work(3.0)

    # -- force pipeline ----------------------------------------------------

    with pb.function("CalcVolumeForceForElems", ["numElem"], kind="kernel") as f:
        f.call("InitStressTermsForElems", f.var("numElem"))
        f.call("IntegrateStressForElems", f.var("numElem"))
        f.call("CalcHourglassControlForElems", f.var("numElem"))

    with pb.function(
        "CalcForceForNodes", ["numNode", "numElem", "size"], kind="kernel"
    ) as f:
        # Zero the force arrays: memory bound over nodes.
        with f.for_("i", 0, f.var("numNode")):
            f.mem_work(30.0)
        f.call("CalcVolumeForceForElems", f.var("numElem"))
        f.call("CommSBN", mul(var("size"), var("size")))

    with pb.function(
        "LagrangeNodal", ["numNode", "numElem", "size"], kind="kernel"
    ) as f:
        f.call("CalcForceForNodes", f.var("numNode"), f.var("numElem"), f.var("size"))
        f.call("CalcAccelerationForNodes", f.var("numNode"))
        f.call(
            "ApplyAccelerationBoundaryConditionsForNodes", f.var("size")
        )
        f.call("CalcVelocityForNodes", f.var("numNode"))
        f.call("CalcPositionForNodes", f.var("numNode"))
        f.call("CommSyncPosVel", mul(var("size"), var("size")))

    # -- Q (artificial viscosity) pipeline --------------------------------

    with pb.function("CalcLagrangeElements", ["numElem"], kind="kernel") as f:
        f.call("CalcKinematicsForElems", f.var("numElem"))
        with f.for_("i", 0, f.var("numElem")):
            f.work(5.0)

    # CalcQForElems: THE B2 kernel.  Compact body (default filter skips
    # it); pack loop with a single exit condition carrying both p and size
    # (conservative multiplicative dependency, sections 5.2/B2).
    with pb.function("CalcQForElems", ["numElem", "size", "p"], kind="kernel") as f:
        f.call("CalcMonotonicQGradientsForElems", f.var("numElem"))
        with f.for_("i", 0, f.var("numElem")):
            f.call("domain_get_q", f.var("i"))
            f.work(2.0)
        f.assign(
            "faces",
            mul(mul(var("size"), var("size")), pow_(var("p"), 0.25)),
        )
        with f.for_("fIdx", 0, f.var("faces")):
            f.mem_work(40.0)
        f.call("CommMonoQ", mul(var("size"), var("size")))

    # Region handling: the section 5.2 control-flow-taint example.
    with pb.function(
        "SetupRegionSizes",
        ["numElem", "regions", "balance", "regElemSize"],
        kind="kernel",
    ) as f:
        # The paper's section 5.2 example, verbatim in structure: the
        # counts accumulated here depend on `size` only through the number
        # of loop iterations (control flow), never through data flow.
        with f.for_("i", 0, f.var("numElem")):
            f.assign("r", mod(var("i"), var("regions")))
            f.store(
                "regElemSize",
                f.var("r"),
                add(load("regElemSize", var("r")), 1),
            )
        with f.for_("b", 0, f.var("balance")):
            f.work(5.0)

    with pb.function(
        "CalcMonotonicQRegionForElems",
        ["numElem", "regions", "regElemSize"],
        kind="kernel",
    ) as f:
        with f.for_("r", 0, f.var("regions")):
            f.assign("n", load("regElemSize", var("r")))
            with f.for_("e", 0, f.var("n")):
                f.work(4.0)

    # -- EOS pipeline ------------------------------------------------------

    with pb.function("CalcPressureForElems", ["n"], kind="kernel") as f:
        for k in range(5):
            f.assign(f"c{k}", float(k))
        with f.for_("i", 0, f.var("n")):
            f.work(14.0)

    with pb.function("CalcEnergyForElems", ["n"], kind="kernel") as f:
        for k in range(5):
            f.assign(f"c{k}", float(k))
        with f.for_("i", 0, f.var("n")):
            f.work(22.0)
        f.call("CalcPressureForElems", f.var("n"))

    with pb.function("CalcSoundSpeedForElems", ["n"], kind="kernel") as f:
        with f.for_("i", 0, f.var("n")):
            f.work(9.0)

    with pb.function("EvalEOSForElems", ["n"], kind="kernel") as f:
        with f.for_("i", 0, f.var("n")):
            f.work(7.0)
        f.call("CalcEnergyForElems", f.var("n"))
        f.call("CalcSoundSpeedForElems", f.var("n"))

    with pb.function(
        "ApplyMaterialPropertiesForElems",
        ["numElem", "regions", "cost"],
        kind="kernel",
    ) as f:
        f.assign("elemsPerReg", floordiv(var("numElem"), var("regions")))
        with f.for_("r", 0, f.var("regions")):
            with f.for_("c", 0, f.var("cost")):
                f.call("EvalEOSForElems", f.var("elemsPerReg"))

    with pb.function(
        "LagrangeElements",
        ["numElem", "regions", "cost", "size", "p", "regElemSize"],
        kind="kernel",
    ) as f:
        f.call("CalcLagrangeElements", f.var("numElem"))
        f.call("CalcQForElems", f.var("numElem"), f.var("size"), f.var("p"))
        f.call(
            "CalcMonotonicQRegionForElems",
            f.var("numElem"),
            f.var("regions"),
            f.var("regElemSize"),
        )
        f.call(
            "ApplyMaterialPropertiesForElems",
            f.var("numElem"),
            f.var("regions"),
            f.var("cost"),
        )
        f.call("UpdateVolumesForElems", f.var("numElem"))

    with pb.function("CalcTimeConstraintsForElems", ["numElem"], kind="kernel") as f:
        f.call("CalcCourantConstraintForElems", f.var("numElem"))
        f.call("CalcHydroConstraintForElems", f.var("numElem"))

    # -- communication routines -------------------------------------------

    with pb.function("TimeIncrement", [], kind="comm") as f:
        f.assign("dt", call("MPI_Allreduce", 1.0, 1.0))
        f.ret(f.var("dt"))

    with pb.function("CommSBN", ["count"], kind="comm") as f:
        f.call("MPI_Isend", f.var("count"))
        f.call("MPI_Irecv", f.var("count"))
        f.call("MPI_Wait", f.var("count"))

    with pb.function("CommSyncPosVel", ["count"], kind="comm") as f:
        f.call("MPI_Send", f.var("count"))
        f.call("MPI_Recv", f.var("count"))

    with pb.function("CommMonoQ", ["count"], kind="comm") as f:
        f.call("MPI_Send", f.var("count"))
        f.call("MPI_Recv", f.var("count"))

    # Hand-rolled reduction: the second function with a p-dependent loop.
    with pb.function("CommAllReduceHand", ["count"], kind="comm") as f:
        f.assign("p", call("MPI_Comm_size"))
        with f.for_("s", 0, log2(var("p"))):
            f.call("MPI_Send", f.var("count"))
            f.call("MPI_Recv", f.var("count"))

    with pb.function("LagrangeLeapFrog", [
        "numElem", "numNode", "size", "regions", "cost", "p", "regElemSize"
    ], kind="kernel") as f:
        f.call("LagrangeNodal", f.var("numNode"), f.var("numElem"), f.var("size"))
        f.call(
            "LagrangeElements",
            f.var("numElem"),
            f.var("regions"),
            f.var("cost"),
            f.var("size"),
            f.var("p"),
            f.var("regElemSize"),
        )
        f.call("CalcTimeConstraintsForElems", f.var("numElem"))

    # -- main -----------------------------------------------------------------

    with pb.function(
        "main", ["size", "regions", "balance", "cost", "iters"]
    ) as f:
        f.assign("p", call("MPI_Comm_size"))
        f.assign("numElem", mul(mul(var("size"), var("size")), var("size")))
        f.assign(
            "numNode",
            mul(
                mul(add(var("size"), 1), add(var("size"), 1)),
                add(var("size"), 1),
            ),
        )
        for name in setup_names:
            f.call(name)
        f.alloc("regElemSize", f.var("regions"))
        f.call(
            "SetupRegionSizes",
            f.var("numElem"),
            f.var("regions"),
            f.var("balance"),
            f.var("regElemSize"),
        )
        with f.for_("cycle", 0, f.var("iters")):
            f.call("TimeIncrement")
            # Rank queries are issued frequently (logging, diagnostics):
            # enough samples that their constant time passes the CoV
            # screen, making them modelable -- the paper's B1 example of
            # four MPI_Comm_rank wrappers black-box modeling gets wrong.
            with f.for_("q", 0, 10):
                f.call("GetMyRank")
                f.call("LogRank")
                f.call("DebugRank")
                f.call("TraceRank")
            f.call(
                "LagrangeLeapFrog",
                f.var("numElem"),
                f.var("numNode"),
                f.var("size"),
                f.var("regions"),
                f.var("cost"),
                f.var("p"),
                f.var("regElemSize"),
            )
        f.call("CommAllReduceHand", 1.0)
        f.call("MPI_Barrier")

    return pb.build(entry="main")


# ----------------------------------------------------------------------
# workload adapter


@register_workload("lulesh", params=("p", "size", "regions", "balance", "cost", "iters"))
@dataclass
class LuleshWorkload:
    """The LULESH workload for the measurement/pipeline layers.

    ``parameters`` chooses the modeled subset (the paper's two-parameter
    study uses ``("p", "size")``; the contention study uses ``("r",)``).
    Non-modeled inputs come from ``defaults``.
    """

    parameters: tuple[str, ...] = ("p", "size")
    defaults: Mapping[str, float] = field(
        default_factory=lambda: {
            "p": 27,
            "size": 25,
            "regions": 11,
            "balance": 2,
            "cost": 1,
            "iters": 3,
            "r": 1,
        }
    )
    network: NetworkModel = DEFAULT_NETWORK
    exec_config: ExecConfig = DEFAULT_CONFIG
    name: str = "lulesh"

    #: All explicitly annotated program parameters (Table 3 rows).
    annotated: tuple[str, ...] = (
        "size",
        "regions",
        "balance",
        "cost",
        "iters",
    )

    def __post_init__(self) -> None:
        self._program: Program | None = None

    def program(self) -> Program:  # noqa: D102
        if self._program is None:
            self._program = build_lulesh()
        return self._program

    def setup(self, config: Mapping[str, float]) -> RunSetup:  # noqa: D102
        merged = dict(self.defaults)
        merged.update(config)
        runtime = MPIRuntime(
            MPIConfig(
                ranks=int(merged["p"]),
                ranks_per_node=int(merged.get("r", 1)),
                network=self.network,
            )
        )
        args = {
            "size": int(merged["size"]),
            "regions": int(merged["regions"]),
            "balance": int(merged["balance"]),
            "cost": int(merged["cost"]),
            "iters": int(merged["iters"]),
        }
        return RunSetup(
            args=args,
            runtime=runtime,
            ranks_per_node=int(merged.get("r", 1)),
            exec_config=self.exec_config,
        )

    def taint_config(self) -> dict[str, float]:
        """The paper's representative taint run: size=5 on 8 ranks."""
        return {"p": 8, "size": 5}

    def sources(self) -> dict[str, str]:  # noqa: D102
        return {name: name for name in self.annotated}

    def spec(self) -> WorkloadSpec:
        """Picklable recipe for rebuilding this workload in a worker."""
        return WorkloadSpec(
            factory=LuleshWorkload,
            kwargs={
                "parameters": self.parameters,
                "defaults": dict(self.defaults),
                "network": self.network,
                "exec_config": self.exec_config,
            },
        )
