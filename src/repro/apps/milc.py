"""A structurally faithful MILC ``su3_rmd`` mini-app (paper section 6).

MILC's su3_rmd is a lattice-QCD R-algorithm application.  The mini-app
mirrors the structure behind the paper's MILC results:

* the space-time domain is ``nx * ny * nz * nt`` sites, distributed over
  ``p`` ranks (so per-rank loops carry all four extent labels plus ``p`` —
  the conservative multiplicative dependency of section 5.2);
* the molecular-dynamics driver loops: ``warms + trajecs`` trajectories
  (one exit condition carrying both labels), ``steps`` per trajectory, a
  conjugate-gradient solver bounded by ``niter`` and restarted
  ``nrestart`` times;
* ``mass``/``beta`` are purely numerical inputs: they flow into work
  *amounts*, never into loop bounds, so taint correctly prunes them
  (the paper: "our findings are identical with the ground truth
  established by experts");
* the internal gather has a communicator-size algorithm switch
  (linear below 8 ranks, tree from 8 up) — the C2 segmented-behavior
  case, with the un-taken variant left unexecuted at taint time;
* hundreds of generated SU(3) algebra helpers and buffer-management
  functions supply the Table 2 function counts (364 / 188 pruned).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..interp.config import DEFAULT_CONFIG, ExecConfig
from ..ir.builder import (
    ProgramBuilder,
    add,
    call,
    floordiv,
    lt,
    mul,
    var,
)
from ..ir.program import Program
from ..measure.experiment import RunSetup
from ..measure.parallel import WorkloadSpec
from ..mpisim.network import DEFAULT_NETWORK, NetworkModel
from ..mpisim.runtime import MPIConfig, MPIRuntime
from ..registry import register_workload
from .common import (
    add_dynamic_helper,
    add_medium_accessor,
    add_rank_query_wrapper,
    add_static_helper,
    add_wide_constant_helper,
)

#: SU(3) helper families (generated accessors).
_SU3_FAMILIES = (
    "mult_su3_nn",
    "mult_su3_na",
    "mult_su3_an",
    "add_su3_matrix",
    "sub_su3_matrix",
    "scalar_mult_su3",
    "su3_adjoint",
    "clear_su3mat",
    "su3_projector",
    "uncompress_anti_hermitian",
)
_SU3_PER_FAMILY = 26  # 260 accessors

_N_STATIC_HELPERS = 60
_N_WIDE_HELPERS = 20
_N_DYNAMIC_HELPERS = 185
_N_GEN_KERNELS = 38
_SETUP_GROUP = 25


def _add_generated(pb: ProgramBuilder) -> tuple[list[str], list[str]]:
    """Generate helper functions; returns (no-arg names, one-arg names)."""
    noarg: list[str] = []
    onearg: list[str] = []
    for family in _SU3_FAMILIES:
        for i in range(_SU3_PER_FAMILY):
            name = f"{family}_{i}"
            # SU(3) algebra helpers are ~30 lines of straight-line C: big
            # enough that the default Score-P filter keeps them (Fig. 4).
            add_medium_accessor(pb, name, cost=1.0 + (i % 3), statements=10)
            onearg.append(name)
    for i in range(_N_STATIC_HELPERS):
        name = f"make_lattice_part_{i}"
        add_static_helper(pb, name, trip=4 + i % 4, cost=1.0)
        noarg.append(name)
    for i in range(_N_WIDE_HELPERS):
        name = f"io_helper_{i}"
        add_wide_constant_helper(pb, name, statements=8 + i % 5)
        onearg.append(name)
    for i in range(_N_DYNAMIC_HELPERS):
        name = f"init_buffer_{i}"
        add_dynamic_helper(pb, name, cost=1.5)
        onearg.append(name)
    for name in ("mynode", "report_rank", "node_index", "io_node"):
        add_rank_query_wrapper(pb, name)
        noarg.append(name)
    return noarg, onearg


def _add_setup_callers(
    pb: ProgramBuilder, noarg: list[str], onearg: list[str]
) -> list[str]:
    calls = [(n, False) for n in noarg] + [(n, True) for n in onearg]
    names: list[str] = []
    for start in range(0, len(calls), _SETUP_GROUP):
        chunk = calls[start : start + _SETUP_GROUP]
        name = f"setup_lattice_{start // _SETUP_GROUP}"
        with pb.function(name, [], kind="helper") as f:
            for callee, takes_arg in chunk:
                if takes_arg:
                    f.call(callee, 5.0)
                else:
                    f.call(callee)
        names.append(name)
    return names


#: SU(3) stencil operations are hundreds of flops per site; the scale makes
#: per-call instrumentation overhead amortize over site work exactly as on
#: the real application (Figure 4: "negligible on larger-scale runs").
_SITE_WORK_SCALE = 4.0


def _site_kernel(
    pb: ProgramBuilder,
    name: str,
    helpers: "list[str]",
    work_amount: float,
    mem_amount: float = 0.0,
    pad: int = 5,
) -> None:
    """A kernel looping over the per-rank sites."""
    with pb.function(name, ["sites"], kind="kernel") as f:
        for k in range(pad):
            f.assign(f"c{k}", float(k))
        with f.for_("i", 0, f.var("sites")):
            for h in helpers:
                f.call(h, f.var("i"))
            if work_amount:
                f.work(work_amount * _SITE_WORK_SCALE)
            if mem_amount:
                f.mem_work(mem_amount * _SITE_WORK_SCALE)


def build_milc() -> Program:
    """Build the MILC su3_rmd mini-app program."""
    pb = ProgramBuilder()

    noarg, onearg = _add_generated(pb)
    setup_names = _add_setup_callers(pb, noarg, onearg)

    # -- communication layer (13 routines) ------------------------------

    with pb.function("gather_linear", ["count"], kind="comm") as f:
        f.assign("p", call("MPI_Comm_size"))
        with f.for_("d", 0, f.var("p")):
            f.call("MPI_Send", f.var("count"))
            f.call("MPI_Recv", f.var("count"))

    with pb.function("gather_tree", ["count"], kind="comm") as f:
        f.call("MPI_Isend", f.var("count"))
        f.call("MPI_Irecv", f.var("count"))
        f.call("MPI_Wait", f.var("count"))

    # The C2 kernel: algorithm selection on the communicator size.
    with pb.function("do_gather", ["count"], kind="comm") as f:
        f.assign("p", call("MPI_Comm_size"))
        with f.if_(lt(var("p"), 8)):
            f.call("gather_linear", f.var("count"))
        with f.else_():
            f.call("gather_tree", f.var("count"))

    with pb.function("start_gather_site", ["count"], kind="comm") as f:
        f.call("do_gather", f.var("count"))

    with pb.function("wait_gather", ["count"], kind="comm") as f:
        f.call("MPI_Wait", f.var("count"))

    with pb.function("cleanup_gather", [], kind="comm") as f:
        f.work(2.0)

    with pb.function("g_doublesum", ["count"], kind="comm") as f:
        f.assign("s", call("MPI_Allreduce", 1.0, var("count")))
        f.ret(f.var("s"))

    with pb.function("g_vecdoublesum", ["count"], kind="comm") as f:
        f.assign("s", call("MPI_Allreduce", 1.0, var("count")))
        f.ret(f.var("s"))

    with pb.function("g_complexsum", ["count"], kind="comm") as f:
        f.assign("s", call("MPI_Allreduce", 1.0, var("count")))
        f.ret(f.var("s"))

    with pb.function("broadcast_float", [], kind="comm") as f:
        f.assign("v", call("MPI_Bcast", 1.0, 1.0))
        f.ret(f.var("v"))

    with pb.function("send_field", ["count"], kind="comm") as f:
        f.call("MPI_Send", f.var("count"))

    with pb.function("get_field", ["count"], kind="comm") as f:
        f.call("MPI_Recv", f.var("count"))

    with pb.function("sum_linktrace", ["count"], kind="comm") as f:
        f.assign("s", call("MPI_Allreduce", 1.0, var("count")))
        f.ret(f.var("s"))

    # -- hand-written kernels ---------------------------------------------

    _site_kernel(
        pb,
        "dslash_site",
        ["mult_su3_nn_0", "mult_su3_na_0", "add_su3_matrix_0"],
        work_amount=66.0,
        mem_amount=24.0,
    )
    _site_kernel(
        pb,
        "dslash_special",
        ["mult_su3_nn_1", "add_su3_matrix_1"],
        work_amount=60.0,
        mem_amount=20.0,
    )
    _site_kernel(pb, "grsource_imp", ["scalar_mult_su3_0"], 30.0, 6.0)
    _site_kernel(pb, "reunitarize_site", ["su3_projector_0"], 40.0, 0.0)
    _site_kernel(pb, "rephase", ["clear_su3mat_0"], 8.0, 4.0)
    _site_kernel(
        pb, "load_fatlinks", ["mult_su3_nn_2", "mult_su3_an_0"], 90.0, 30.0
    )
    _site_kernel(pb, "load_longlinks", ["mult_su3_nn_3"], 50.0, 18.0)
    _site_kernel(
        pb, "imp_gauge_force", ["mult_su3_na_1", "su3_adjoint_0"], 80.0, 24.0
    )
    _site_kernel(
        pb, "eo_fermion_force", ["mult_su3_nn_4", "su3_projector_1"], 70.0, 22.0
    )
    _site_kernel(pb, "gauge_action", ["mult_su3_nn_5"], 45.0, 10.0)
    _site_kernel(pb, "plaquette_site", ["mult_su3_nn_6"], 26.0, 8.0)
    _site_kernel(pb, "ploop_site", ["mult_su3_nn_7"], 20.0, 6.0)

    # Generated lattice kernels to reach the paper's ~56 kernel count.
    for i in range(_N_GEN_KERNELS):
        _site_kernel(
            pb,
            f"compute_field_{i}",
            [f"add_su3_matrix_{2 + i % 10}"],
            work_amount=10.0 + (i % 7) * 4.0,
            mem_amount=4.0 if i % 3 == 0 else 0.0,
        )

    # dslash wrapper: gathers neighbours, then applies the stencil.
    with pb.function("dslash", ["sites", "surface"], kind="kernel") as f:
        f.call("start_gather_site", f.var("surface"))
        f.call("wait_gather", f.var("surface"))
        f.call("dslash_site", f.var("sites"))
        f.call("cleanup_gather")

    # Conjugate gradient: niter iterations, nrestart restarts.
    with pb.function(
        "ks_congrad", ["sites", "surface", "niter", "mass"], kind="kernel"
    ) as f:
        with f.for_("it", 0, f.var("niter")):
            f.call("dslash", f.var("sites"), f.var("surface"))
            f.call("dslash", f.var("sites"), f.var("surface"))
            with f.for_("i", 0, f.var("sites")):
                f.work(12.0 * _SITE_WORK_SCALE)
            f.call("g_doublesum", 1.0)

    with pb.function(
        "update_h", ["sites", "mass", "beta"], kind="kernel"
    ) as f:
        # mass/beta scale the arithmetic, not the iteration space: they
        # taint work *amounts* but never a loop bound (pruned parameters).
        f.assign("scale", mul(var("mass"), var("beta")))
        with f.for_("i", 0, f.var("sites")):
            f.work(34.0 * _SITE_WORK_SCALE)
        f.call("imp_gauge_force", f.var("sites"))
        f.call("eo_fermion_force", f.var("sites"))

    with pb.function("update_u", ["sites"], kind="kernel") as f:
        with f.for_("i", 0, f.var("sites")):
            f.work(28.0 * _SITE_WORK_SCALE)
            f.mem_work(10.0 * _SITE_WORK_SCALE)

    with pb.function(
        "update_step",
        ["sites", "surface", "steps", "niter", "mass", "beta"],
        kind="kernel",
    ) as f:
        with f.for_("s", 0, f.var("steps")):
            f.call("update_h", f.var("sites"), f.var("mass"), f.var("beta"))
            f.call("update_u", f.var("sites"))
        f.call("reunitarize_site", f.var("sites"))

    with pb.function(
        "update",
        ["sites", "surface", "steps", "niter", "nrestart", "mass", "beta"],
        kind="kernel",
    ) as f:
        f.call("load_fatlinks", f.var("sites"))
        f.call("load_longlinks", f.var("sites"))
        f.call(
            "update_step",
            f.var("sites"),
            f.var("surface"),
            f.var("steps"),
            f.var("niter"),
            f.var("mass"),
            f.var("beta"),
        )
        f.call("grsource_imp", f.var("sites"))
        with f.for_("rst", 0, f.var("nrestart")):
            f.call(
                "ks_congrad",
                f.var("sites"),
                f.var("surface"),
                f.var("niter"),
                f.var("mass"),
            )

    with pb.function("measure_observables", ["sites"], kind="kernel") as f:
        f.call("plaquette_site", f.var("sites"))
        f.call("ploop_site", f.var("sites"))
        f.call("g_complexsum", 1.0)
        f.call("sum_linktrace", 1.0)

    # -- main ----------------------------------------------------------------

    with pb.function(
        "main",
        [
            "nx",
            "ny",
            "nz",
            "nt",
            "steps",
            "niter",
            "warms",
            "trajecs",
            "nrestart",
            "mass",
            "beta",
        ],
    ) as f:
        f.assign("p", call("MPI_Comm_size"))
        # The space-time volume, distributed over ranks: the per-rank site
        # loop bound carries nx, ny, nz, nt AND p in one exit condition
        # (the conservative multiplicative dependency of section 5.2).
        f.assign(
            "volume",
            mul(mul(var("nx"), var("ny")), mul(var("nz"), var("nt"))),
        )
        f.assign("sites", floordiv(var("volume"), var("p")))
        f.assign("surface", floordiv(var("volume"), mul(var("nx"), var("p"))))
        for name in setup_names:
            f.call(name)
        f.call("rephase", f.var("sites"))
        for i in range(_N_GEN_KERNELS):
            f.call(f"compute_field_{i}", f.var("sites"))
        f.call("broadcast_float")
        # warms + trajecs trajectories: one exit condition, two labels.
        with f.for_("traj", 0, add(var("warms"), var("trajecs"))):
            f.call(
                "update",
                f.var("sites"),
                f.var("surface"),
                f.var("steps"),
                f.var("niter"),
                f.var("nrestart"),
                f.var("mass"),
                f.var("beta"),
            )
            f.call("measure_observables", f.var("sites"))
        f.call("g_vecdoublesum", 1.0)
        f.call("MPI_Barrier")

    return pb.build(entry="main")


# ----------------------------------------------------------------------
# workload adapter


@register_workload(
    "milc",
    params=(
        "p", "nx", "ny", "nz", "nt",
        "steps", "niter", "warms", "trajecs", "nrestart", "mass", "beta",
    ),
)
@dataclass
class MilcWorkload:
    """The MILC workload for the measurement/pipeline layers.

    The paper's scaling studies use the domain size and ``p``; here
    ``size`` maps to ``nx`` with the other extents fixed small, so the
    per-rank site count is ``(size * ny * nz * nt) / p`` — linear in
    ``size``, inverse in ``p``, exactly the lattice-QCD weak/strong
    scaling structure, while keeping interpreted loop extents tractable.
    """

    parameters: tuple[str, ...] = ("p", "size")
    defaults: Mapping[str, float] = field(
        default_factory=lambda: {
            "p": 4,
            "size": 32,
            "ny": 4,
            "nz": 2,
            "nt": 2,
            "steps": 3,
            "niter": 4,
            "warms": 1,
            "trajecs": 2,
            "nrestart": 1,
            "mass": 0.5,
            "beta": 6.0,
            "r": 1,
        }
    )
    network: NetworkModel = DEFAULT_NETWORK
    exec_config: ExecConfig = DEFAULT_CONFIG
    name: str = "milc"

    annotated: tuple[str, ...] = (
        "nx",
        "ny",
        "nz",
        "nt",
        "steps",
        "niter",
        "warms",
        "trajecs",
        "nrestart",
        "mass",
        "beta",
    )

    def __post_init__(self) -> None:
        self._program: Program | None = None

    def program(self) -> Program:  # noqa: D102
        if self._program is None:
            self._program = build_milc()
        return self._program

    def setup(self, config: Mapping[str, float]) -> RunSetup:  # noqa: D102
        merged = dict(self.defaults)
        merged.update(config)
        if "size" in merged:
            merged.setdefault("nx", merged["size"])
        runtime = MPIRuntime(
            MPIConfig(
                ranks=int(merged["p"]),
                ranks_per_node=int(merged.get("r", 1)),
                network=self.network,
            )
        )
        args = {
            "nx": int(merged.get("nx", merged.get("size", 32))),
            "ny": int(merged["ny"]),
            "nz": int(merged["nz"]),
            "nt": int(merged["nt"]),
            "steps": int(merged["steps"]),
            "niter": int(merged["niter"]),
            "warms": int(merged["warms"]),
            "trajecs": int(merged["trajecs"]),
            "nrestart": int(merged["nrestart"]),
            "mass": float(merged["mass"]),
            "beta": float(merged["beta"]),
        }
        return RunSetup(
            args=args,
            runtime=runtime,
            ranks_per_node=int(merged.get("r", 1)),
            exec_config=self.exec_config,
        )

    def taint_config(self) -> dict[str, float]:
        """The paper's representative taint run: size=128 on 32 ranks."""
        return {"p": 32, "size": 128}

    def sources(self) -> dict[str, str]:  # noqa: D102
        return {name: name for name in self.annotated}

    def spec(self) -> WorkloadSpec:
        """Picklable recipe for rebuilding this workload in a worker."""
        return WorkloadSpec(
            factory=MilcWorkload,
            kwargs={
                "parameters": self.parameters,
                "defaults": dict(self.defaults),
                "network": self.network,
                "exec_config": self.exec_config,
            },
        )
