"""Shared machinery for building workload mini-apps.

The paper's benchmarks owe their function counts to hordes of tiny
constant-cost functions (C++ accessors on LULESH's ``Domain`` class, SU(3)
algebra helpers in MILC).  These are generated programmatically, exactly
like a class definition generates getters — the generated functions are
*real* IR functions the analyses must chew through, not bookkeeping.
"""

from __future__ import annotations

from typing import Sequence

from ..ir.builder import FunctionBuilder, ProgramBuilder, call, mul


def add_accessor(pb: ProgramBuilder, name: str, cost: float = 1.0) -> None:
    """A leaf constant-cost accessor (getter/setter style).

    No loops, no calls: pruned statically, eligible for the interpreter's
    aggregated-call fast path.
    """
    with pb.function(name, ["i"], kind="accessor") as f:
        f.assign("v", mul(f.var("i"), 2.0))
        f.work(cost)
        f.ret(f.var("v"))


def add_medium_accessor(
    pb: ProgramBuilder, name: str, cost: float = 2.0, statements: int = 8
) -> None:
    """A leaf constant-cost helper with a *medium-sized* body.

    Still loop/call-free (leaf-eligible, statically pruned), but large
    enough that Score-P's size-based default filter keeps it instrumented
    — the overhead-without-benefit case that makes the default filter as
    expensive as full instrumentation on MILC (paper Figure 4).  Real
    examples: SU(3) matrix multiplies (~30 lines of straight-line code).
    """
    with pb.function(name, ["i"], kind="accessor") as f:
        for k in range(max(1, statements - 2)):
            f.assign(f"t{k}", mul(f.var("i"), float(k + 1)))
        f.work(cost)
        f.ret(f.var("t0"))


def add_static_helper(
    pb: ProgramBuilder, name: str, trip: int = 8, cost: float = 2.0
) -> None:
    """A helper with a constant-trip-count loop: pruned statically."""
    with pb.function(name, [], kind="helper") as f:
        with f.for_("i", 0, trip):
            f.work(cost)


def add_dynamic_helper(
    pb: ProgramBuilder, name: str, cost: float = 2.0
) -> None:
    """A helper whose loop bound is a runtime argument.

    Static analysis cannot resolve the trip count (the bound is a
    variable), so the function survives to the dynamic phase; the taint
    run then proves the bound carries no parameter label and prunes it
    *dynamically* (the "Pruned Dynamically" row of Table 2).
    """
    with pb.function(name, ["n"], kind="helper") as f:
        with f.for_("i", 0, f.var("n")):
            f.work(cost)


def add_wide_constant_helper(
    pb: ProgramBuilder, name: str, statements: int = 10
) -> None:
    """A constant function with a *large* body.

    Score-P's default size-based filter keeps such functions instrumented
    (they look important) although they are performance-irrelevant — the
    overhead-without-benefit case of section A3.
    """
    with pb.function(name, ["i"], kind="helper") as f:
        for k in range(max(1, statements - 1)):
            f.assign(f"t{k}", mul(f.var("i"), float(k + 1)))
        f.ret(f.var(f"t{max(0, statements - 2)}"))


def add_rank_query_wrapper(pb: ProgramBuilder, name: str) -> None:
    """A wrapper around ``MPI_Comm_rank`` (constant-time query).

    The paper's B1 result: four such functions were incorrectly given
    parametric models by black-box modeling; taint proves them constant.
    """
    with pb.function(name, [], kind="helper") as f:
        f.assign("r", call("MPI_Comm_rank"))
        f.ret(f.var("r"))


def call_each(
    f: FunctionBuilder, names: Sequence[str], arg: float = 1.0
) -> None:
    """Emit a call to every function in *names* with a constant argument."""
    for name in names:
        f.call(name, arg)
