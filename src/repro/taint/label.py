"""DFSan-style taint labels.

Mirrors the label design the paper adopts from LLVM's DataFlowSanitizer
(section 5.2): labels form a tree where each label is either a *base* label
(one marked program parameter) or the *union* of exactly two labels.  Each
label has a 16-bit identifier; the union operation first checks whether an
equivalent combination already exists and only then allocates a new id.
Label 0 is the distinguished "untainted" label.

"While the implementation is less efficient than a simple bitset solution,
it supports up to 2^16 unique labels."  We keep that design (and its
exhaustion failure mode) deliberately, and property-test the union algebra
(commutative, associative, idempotent, absorbing w.r.t. 0).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import LabelExhaustionError

#: The distinguished clean label.
CLEAN: int = 0

#: Maximum number of distinct labels (16-bit identifiers), including CLEAN.
MAX_LABELS: int = 1 << 16


@dataclass(frozen=True)
class LabelInfo:
    """Metadata of one allocated label."""

    ident: int
    #: Base-label parameter name, or None for union labels.
    name: str | None
    #: Child labels for union labels; (0, 0) for base labels.
    left: int
    right: int

    @property
    def is_base(self) -> bool:
        return self.name is not None


class LabelTable:
    """Allocator and algebra for taint labels."""

    def __init__(self) -> None:
        self._info: list[LabelInfo] = [LabelInfo(CLEAN, None, 0, 0)]
        self._by_name: dict[str, int] = {}
        self._unions: dict[tuple[int, int], int] = {}
        # memo: label id -> frozenset of base names
        self._expand_cache: dict[int, frozenset[str]] = {
            CLEAN: frozenset()
        }

    def __len__(self) -> int:
        return len(self._info)

    # ------------------------------------------------------------------

    def create(self, name: str) -> int:
        """Return the base label for parameter *name*, allocating if new."""
        if name in self._by_name:
            return self._by_name[name]
        ident = self._allocate(LabelInfo(len(self._info), name, 0, 0))
        self._by_name[name] = ident
        self._expand_cache[ident] = frozenset({name})
        return ident

    def union(self, a: int, b: int) -> int:
        """The label representing the union of labels *a* and *b*.

        Verifies "whether the operands do not represent an equivalent
        combination of labels and creates a new one if necessary" (5.2):
        unions are deduplicated on the normalized (min, max) pair, and a
        union whose operands are equal or subsumed short-circuits.
        """
        if a == b or b == CLEAN:
            return a
        if a == CLEAN:
            return b
        lo, hi = (a, b) if a < b else (b, a)
        cached = self._unions.get((lo, hi))
        if cached is not None:
            return cached
        # Subsumption: if one operand's base set contains the other's, the
        # union is equivalent to the larger operand.
        ea, eb = self.expand(lo), self.expand(hi)
        if ea <= eb:
            self._unions[(lo, hi)] = hi
            return hi
        if eb <= ea:
            self._unions[(lo, hi)] = lo
            return lo
        # A union over the same base set may already exist under different
        # operands; reuse it to conserve the 16-bit space.
        combined = ea | eb
        for ident, names in self._expand_cache.items():
            if names == combined:
                self._unions[(lo, hi)] = ident
                return ident
        ident = self._allocate(LabelInfo(len(self._info), None, lo, hi))
        self._unions[(lo, hi)] = ident
        self._expand_cache[ident] = combined
        return ident

    def union_all(self, labels: "list[int] | tuple[int, ...]") -> int:
        """Fold :meth:`union` over *labels* (CLEAN for an empty sequence)."""
        out = CLEAN
        for label in labels:
            out = self.union(out, label)
        return out

    def expand(self, label: int) -> frozenset[str]:
        """The set of base parameter names a label represents."""
        cached = self._expand_cache.get(label)
        if cached is not None:
            return cached
        info = self.info(label)
        names = self.expand(info.left) | self.expand(info.right)
        self._expand_cache[label] = names
        return names

    def info(self, label: int) -> LabelInfo:
        """Metadata of *label* (raises IndexError for unallocated ids)."""
        return self._info[label]

    def has(self, label: int, name: str) -> bool:
        """True if base parameter *name* is contained in *label*."""
        return name in self.expand(label)

    def base_labels(self) -> dict[str, int]:
        """All allocated base labels, name -> id."""
        return dict(self._by_name)

    # ------------------------------------------------------------------

    def _allocate(self, info: LabelInfo) -> int:
        if len(self._info) >= MAX_LABELS:
            raise LabelExhaustionError(
                f"16-bit label space exhausted ({MAX_LABELS} labels)"
            )
        self._info.append(info)
        return info.ident
