"""Dynamic taint analysis for performance modeling (paper sections 3–4).

A DFSan-style taint system over the repro IR: union-tree labels with 16-bit
ids, shadow frames and heap, data-flow plus explicit control-flow
propagation, loop-exit and branch sinks, and a library taint model hook for
MPI (section 5.3).

Taint is packaged as an analysis *domain*
(:class:`~repro.taint.domain.TaintDomain`) executed by any
taint-capable engine of the engine registry — the tree-walker or the
closure compiler, bit-identically; :class:`~repro.taint.engine.TaintEngine`
is the driver (``TaintInterpreter`` remains as its tree-pinned
backward-compatible alias).
"""

from .domain import TaintDomain
from .engine import TaintEngine, TaintInterpreter, TaintRunResult
from .label import CLEAN, MAX_LABELS, LabelInfo, LabelTable
from .policy import DATAFLOW_ONLY, FULL_POLICY, PropagationPolicy
from .report import (
    BranchRecord,
    LibraryCallRecord,
    LoopRecord,
    TaintReport,
)
from .shadow import ShadowFrame, ShadowHeap
from .sources import (
    LibraryTaintEffect,
    LibraryTaintModel,
    NoLibraryTaint,
    ParameterSource,
    SourceSpec,
)

__all__ = [
    "BranchRecord",
    "CLEAN",
    "DATAFLOW_ONLY",
    "FULL_POLICY",
    "LabelInfo",
    "LabelTable",
    "LibraryCallRecord",
    "LibraryTaintEffect",
    "LibraryTaintModel",
    "LoopRecord",
    "MAX_LABELS",
    "NoLibraryTaint",
    "ParameterSource",
    "PropagationPolicy",
    "ShadowFrame",
    "ShadowHeap",
    "SourceSpec",
    "TaintDomain",
    "TaintEngine",
    "TaintInterpreter",
    "TaintReport",
    "TaintRunResult",
]
