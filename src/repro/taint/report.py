"""Taint analysis results.

The report is the interface between the dynamic taint run and everything
downstream: function classification (Table 2), per-parameter coverage
(Table 3), experiment design (section A2), instrumentation filters
(section A3), the hybrid modeler's search-space prior (section B1), and the
validity checks (sections C1/C2).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

CallPath = tuple[str, ...]


@dataclass
class LoopRecord:
    """Taint facts about one loop along one call path."""

    function: str
    loop_id: int
    callpath: CallPath
    params: frozenset[str] = frozenset()
    iterations: int = 0
    entries: int = 0


@dataclass
class BranchRecord:
    """Taint facts about one non-loop branch along one call path."""

    function: str
    branch_id: int
    callpath: CallPath
    params: frozenset[str] = frozenset()
    #: Which directions were observed (True = then, False = else).
    directions: frozenset[bool] = frozenset()


@dataclass
class LibraryCallRecord:
    """One library routine invocation site (aggregated over calls)."""

    caller: str
    routine: str
    callpath: CallPath
    params: frozenset[str] = frozenset()
    calls: int = 0


@dataclass
class TaintReport:
    """Aggregated result of one tainted execution."""

    #: Parameters that were registered as taint sources.
    parameters: tuple[str, ...] = ()
    #: Per-(callpath, function, loop_id) loop facts.
    loop_records: dict[tuple[CallPath, str, int], LoopRecord] = field(
        default_factory=dict
    )
    #: Per-(callpath, function, branch_id) branch facts.
    branch_records: dict[tuple[CallPath, str, int], BranchRecord] = field(
        default_factory=dict
    )
    #: Per-(callpath, routine) library call facts.
    library_records: dict[tuple[CallPath, str], LibraryCallRecord] = field(
        default_factory=dict
    )
    #: Analysis warnings (recursion, over-approximation, ...).
    warnings: list[str] = field(default_factory=list)
    #: Functions that were executed at least once during the taint run.
    executed_functions: frozenset[str] = frozenset()

    # ------------------------------------------------------------------
    # merged (callpath-insensitive) views

    def loop_params(self, function: str, loop_id: int) -> frozenset[str]:
        """Parameters affecting a loop, merged over call paths."""
        out: frozenset[str] = frozenset()
        for (_, fn, lid), rec in self.loop_records.items():
            if fn == function and lid == loop_id:
                out |= rec.params
        return out

    def loops_by_function(self) -> dict[str, dict[int, frozenset[str]]]:
        """function -> loop_id -> merged parameter set."""
        out: dict[str, dict[int, frozenset[str]]] = defaultdict(dict)
        for (_, fn, lid), rec in self.loop_records.items():
            prev = out[fn].get(lid, frozenset())
            out[fn][lid] = prev | rec.params
        return dict(out)

    def branch_params(self, function: str, branch_id: int) -> frozenset[str]:
        """Parameters affecting a branch condition, merged over call paths."""
        out: frozenset[str] = frozenset()
        for (_, fn, bid), rec in self.branch_records.items():
            if fn == function and bid == branch_id:
                out |= rec.params
        return out

    def branch_directions(self, function: str, branch_id: int) -> frozenset[bool]:
        """Directions a branch was observed to take, merged over call paths."""
        out: frozenset[bool] = frozenset()
        for (_, fn, bid), rec in self.branch_records.items():
            if fn == function and bid == branch_id:
                out |= rec.directions
        return out

    def library_params(self, caller: str) -> frozenset[str]:
        """Parameters affecting library calls issued directly by *caller*."""
        out: frozenset[str] = frozenset()
        for (_, routine), rec in self.library_records.items():
            if rec.caller == caller:
                out |= rec.params
        return out

    def routine_params(self, routine: str) -> frozenset[str]:
        """Parameters affecting a library routine, merged over callers."""
        out: frozenset[str] = frozenset()
        for (_, rt), rec in self.library_records.items():
            if rt == routine:
                out |= rec.params
        return out

    def routines_called(self) -> frozenset[str]:
        """All library routines observed during the run."""
        return frozenset(rec.routine for rec in self.library_records.values())

    # ------------------------------------------------------------------
    # function-level dependency views (paper Table 2 / Table 3)

    def function_loop_params(self, function: str) -> frozenset[str]:
        """Parameters affecting any loop owned by *function*."""
        out: frozenset[str] = frozenset()
        for (_, fn, _lid), rec in self.loop_records.items():
            if fn == function:
                out |= rec.params
        return out

    def function_params(self, function: str) -> frozenset[str]:
        """Parameters affecting *function*'s own (exclusive) performance:
        its loops plus the library routines it calls directly."""
        return self.function_loop_params(function) | self.library_params(function)

    def tainted_functions(self) -> frozenset[str]:
        """Functions with at least one parameter dependency."""
        out: set[str] = set()
        for (_, fn, _lid), rec in self.loop_records.items():
            if rec.params:
                out.add(fn)
        for (_, _rt), rec in self.library_records.items():
            if rec.params:
                out.add(rec.caller)
        return frozenset(out)

    def functions_affected_by(self, param: str) -> frozenset[str]:
        """Functions whose performance depends on *param* (Table 3 row)."""
        out: set[str] = set()
        for (_, fn, _lid), rec in self.loop_records.items():
            if param in rec.params:
                out.add(fn)
        for (_, _rt), rec in self.library_records.items():
            if param in rec.params:
                out.add(rec.caller)
        return frozenset(out)

    def loops_affected_by(self, param: str) -> frozenset[tuple[str, int]]:
        """(function, loop_id) pairs whose trip count depends on *param*."""
        out: set[tuple[str, int]] = set()
        for (_, fn, lid), rec in self.loop_records.items():
            if param in rec.params:
                out.add((fn, lid))
        return frozenset(out)

    def relevant_loops(self) -> frozenset[tuple[str, int]]:
        """Loops with at least one parameter dependency (Table 2 'Relevant')."""
        out: set[tuple[str, int]] = set()
        for (_, fn, lid), rec in self.loop_records.items():
            if rec.params:
                out.add((fn, lid))
        return frozenset(out)

    # ------------------------------------------------------------------
    # mutation helpers used by the engine

    def record_loop(
        self,
        callpath: CallPath,
        function: str,
        loop_id: int,
        params: frozenset[str],
        iterations: int,
    ) -> None:
        key = (callpath, function, loop_id)
        rec = self.loop_records.get(key)
        if rec is None:
            rec = LoopRecord(function, loop_id, callpath)
            self.loop_records[key] = rec
        rec.params |= params
        rec.iterations += iterations
        rec.entries += 1

    def record_branch(
        self,
        callpath: CallPath,
        function: str,
        branch_id: int,
        params: frozenset[str],
        direction: bool,
    ) -> None:
        key = (callpath, function, branch_id)
        rec = self.branch_records.get(key)
        if rec is None:
            rec = BranchRecord(function, branch_id, callpath)
            self.branch_records[key] = rec
        rec.params |= params
        rec.directions |= {direction}

    def record_library(
        self,
        callpath: CallPath,
        caller: str,
        routine: str,
        params: frozenset[str],
    ) -> None:
        key = (callpath, routine)
        rec = self.library_records.get(key)
        if rec is None:
            rec = LibraryCallRecord(caller, routine, callpath)
            self.library_records[key] = rec
        rec.params |= params
        rec.calls += 1

    def warn(self, message: str) -> None:
        if message not in self.warnings:
            self.warnings.append(message)

    def merge(self, other: "TaintReport") -> "TaintReport":
        """Merge *other* (e.g. a second taint run with different values)
        into a new report; parameter sets union, iteration counts add."""
        merged = TaintReport(
            parameters=tuple(
                dict.fromkeys(self.parameters + other.parameters)
            ),
            executed_functions=self.executed_functions
            | other.executed_functions,
        )
        for report in (self, other):
            for (cp, fn, lid), rec in report.loop_records.items():
                merged.record_loop(cp, fn, lid, rec.params, rec.iterations)
            for (cp, fn, bid), rec in report.branch_records.items():
                for direction in rec.directions:
                    merged.record_branch(cp, fn, bid, rec.params, direction)
            for (cp, rt), rec in report.library_records.items():
                merged.record_library(cp, rec.caller, rt, rec.params)
                merged.library_records[(cp, rt)].calls += rec.calls - 1
            for w in report.warnings:
                merged.warn(w)
        return merged
