"""Shadow state: taint labels for every live program value.

DataFlowSanitizer keeps a shadow memory pool mapping each application byte
to a label (paper 5.2).  Our interpreter's state is scalars in environments
plus heap arrays, so the shadow is:

* one label per variable binding, per call frame
  (:class:`ShadowFrame`);
* one label per array element, per allocation
  (:class:`ShadowHeap`, keyed by array object identity).
"""

from __future__ import annotations

from ..interp.values import Array
from .label import CLEAN


class ShadowFrame:
    """Labels of the scalar variables of one call frame."""

    __slots__ = ("_labels",)

    def __init__(self) -> None:
        self._labels: dict[str, int] = {}

    def get(self, name: str) -> int:
        """Label of variable *name* (CLEAN when never tainted)."""
        return self._labels.get(name, CLEAN)

    def set(self, name: str, label: int) -> None:
        """Set the label of variable *name*."""
        if label == CLEAN:
            # Keep the dict sparse: most variables stay clean.
            self._labels.pop(name, None)
        else:
            self._labels[name] = label

    def items(self) -> dict[str, int]:
        """Copy of the tainted bindings (clean variables omitted)."""
        return dict(self._labels)


class ShadowHeap:
    """Per-element labels for every allocated array.

    Arrays are identified by object identity; entries are created lazily on
    the first tainted store and hold one label per element.  A per-array
    *summary label* (union of all element labels ever stored) is also kept
    so whole-array taint queries are O(1).
    """

    def __init__(self) -> None:
        self._elements: dict[int, list[int]] = {}
        self._summary: dict[int, int] = {}
        # Keep arrays alive while we hold shadow state for them, so ids are
        # not recycled mid-run.
        self._pins: dict[int, Array] = {}

    def load(self, arr: Array, index: int) -> int:
        """Label of ``arr[index]``."""
        labels = self._elements.get(id(arr))
        if labels is None:
            return CLEAN
        return labels[index]

    def store(self, arr: Array, index: int, label: int, union) -> None:
        """Set the label of ``arr[index]``; *union* joins into the summary."""
        key = id(arr)
        labels = self._elements.get(key)
        if labels is None:
            if label == CLEAN:
                return
            labels = [CLEAN] * len(arr)
            self._elements[key] = labels
            self._pins[key] = arr
        labels[index] = label
        self._summary[key] = union(self._summary.get(key, CLEAN), label)

    def summary(self, arr: Array) -> int:
        """Union of all labels ever stored into *arr*."""
        return self._summary.get(id(arr), CLEAN)

    def taint_all(self, arr: Array, label: int, union) -> None:
        """Taint every element of *arr* with *label* (library sources)."""
        if label == CLEAN:
            return
        key = id(arr)
        labels = self._elements.get(key)
        if labels is None:
            labels = [CLEAN] * len(arr)
            self._elements[key] = labels
            self._pins[key] = arr
        for i in range(len(labels)):
            labels[i] = union(labels[i], label)
        self._summary[key] = union(self._summary.get(key, CLEAN), label)
