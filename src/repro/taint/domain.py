"""The taint analysis domain: DFSan-style labels as a pluggable shadow.

Everything the old monolithic ``TaintInterpreter`` knew about *taint* —
the label lattice, the propagation policy gates, the control-dependency
stack, the shadow heap, and the loop/branch/library sinks that populate
the :class:`~repro.taint.report.TaintReport` — now lives here, behind
the :class:`~repro.interp.domain.AnalysisDomain` interface.  The
execution engines (tree-walking and compiled) are pure dispatch
strategies: they call these hooks at fixed program points and never
touch a label directly, so both produce bit-identical reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import RecursionUnsupportedError
from ..interp.domain import AnalysisDomain, CallPath
from ..interp.values import Array, Value
from .label import CLEAN, LabelTable
from .policy import FULL_POLICY, PropagationPolicy
from .report import TaintReport
from .shadow import ShadowHeap
from .sources import LibraryTaintModel, NoLibraryTaint


@dataclass(frozen=True)
class _ControlEntry:
    """One active tainted control region."""

    label: int
    kind: str  # "branch" | "loop"
    #: Names assigned inside the region (loop entries only).
    assigned: frozenset[str]


class TaintDomain(AnalysisDomain):
    """Shadow domain implementing the paper's propagation policy (4.1).

    * **lattice** — union-tree labels with 16-bit ids
      (:class:`~repro.taint.label.LabelTable`);
    * **propagation** — set-union over data flow and explicit control
      flow, optionally implicit flow, per the
      :class:`~repro.taint.policy.PropagationPolicy`;
    * **sinks** — loop exit conditions, non-loop branches, and library
      calls, recorded into a :class:`~repro.taint.report.TaintReport`.

    ``supports_fastpath`` is False: the loop-count sinks need genuine
    per-iteration execution (taint runs use small representative
    configurations, so O(1) loop collapsing is also unnecessary).
    """

    name = "taint"
    tracks_shadow = True
    supports_fastpath = False
    clean = CLEAN

    def __init__(
        self,
        policy: PropagationPolicy = FULL_POLICY,
        library_taint: LibraryTaintModel | None = None,
        strict_recursion: bool = False,
    ) -> None:
        policy.validate()
        self.policy = policy
        self.library_taint: LibraryTaintModel = library_taint or NoLibraryTaint()
        self.strict_recursion = strict_recursion
        self.labels = LabelTable()
        self.report = TaintReport()
        self.heap = ShadowHeap()
        # Control-dependency stack.  Branch entries always propagate their
        # label to values assigned under them; loop entries propagate only
        # to values that read loop-carried state (the loop variable or a
        # name assigned inside the loop body) -- matching the paper's
        # section 5.2 semantics: control flow taints "variables whose
        # values depend on the control flow" (regElemSize++ depends on the
        # iteration count; a loop-invariant assignment does not).
        self._control: list[_ControlEntry] = []
        # Control-label memo: the label for a given read set only changes
        # when the region stack changes, so cache per (stack version,
        # read set).  Hot on real programs, where whole phases execute
        # under one tainted outer loop.
        self._control_version = 0
        self._control_cache: dict[frozenset[str], tuple[int, int]] = {}
        self.executed: set[str] = set()
        self.tracks_control = policy.control_flow
        self.tracks_implicit = policy.implicit_flow
        #: Pre-resolved policy gates for hot-path pre-binding.
        self.data_flow = policy.data_flow
        self.control_flow = policy.control_flow

    # -- lattice ---------------------------------------------------------

    def join(self, a: int, b: int) -> int:
        return self.labels.union(a, b)

    def join_all(self, shadows: Sequence[int]) -> int:
        return self.labels.union_all(list(shadows))

    def expand(self, label: int) -> frozenset[str]:
        """The parameter-name set a label represents."""
        return self.labels.expand(label)

    def source_label(self, name: str) -> int:
        """The base label for marked parameter *name* (allocates if new)."""
        return self.labels.create(name)

    # -- propagation gates -------------------------------------------------

    def data(self, shadow: int) -> int:
        return shadow if self.data_flow else CLEAN

    def data_join(self, a: int, b: int) -> int:
        if not self.data_flow:
            return CLEAN
        return self.labels.union(a, b)

    # -- control regions -----------------------------------------------------

    def push_branch(self, shadow: int) -> None:
        self._control.append(_ControlEntry(shadow, "branch", frozenset()))
        self._control_version += 1

    def push_loop(self, shadow: int, assigned: frozenset[str]) -> None:
        self._control.append(_ControlEntry(shadow, "loop", assigned))
        self._control_version += 1

    def pop_control(self) -> None:
        self._control.pop()
        self._control_version += 1

    def control_label(self, reads: frozenset[str]) -> int:
        """Control labels applying to a value computed from *reads*."""
        if not self.control_flow:
            return CLEAN
        version = self._control_version
        cached = self._control_cache.get(reads)
        if cached is not None and cached[0] == version:
            return cached[1]
        out = CLEAN
        for entry in self._control:
            if entry.kind == "branch" or (reads & entry.assigned):
                out = self.labels.union(out, entry.label)
        self._control_cache[reads] = (version, out)
        return out

    def with_control(self, shadow: int, reads: frozenset[str] = frozenset()) -> int:
        # No active regions means no control labels to attach: skip the
        # union (the hot case — most code runs outside tainted control).
        if self.control_flow and self._control:
            return self.labels.union(shadow, self.control_label(reads))
        return shadow

    # -- heap (array element) shadows ---------------------------------------

    def load_element(self, array: Array, index: int) -> int:
        return self.heap.load(array, index)

    def store_element(self, array: Array, index: int, shadow: int) -> None:
        self.heap.store(array, index, shadow, self.labels.union)

    # -- sinks ----------------------------------------------------------------

    def on_branch(
        self,
        callpath: CallPath,
        function: str,
        branch_id: int,
        cond_shadow: int,
        taken: bool,
    ) -> None:
        # Branch sink (paper 4.4): condition labels and the direction.
        self.report.record_branch(
            callpath, function, branch_id, self.expand(cond_shadow), taken
        )

    def on_loop(
        self,
        callpath: CallPath,
        function: str,
        loop_id: int,
        sink_shadow: int,
        iterations: int,
    ) -> None:
        # Loop-count sink (paper 4.1): the exit condition's labels.
        self.report.record_loop(
            callpath, function, loop_id, self.expand(sink_shadow), iterations
        )

    def on_implicit_flow(self, cond_shadow: int, current: int) -> int:
        return self.labels.union(current, cond_shadow)

    def on_library_call(
        self,
        callpath: CallPath,
        caller: str,
        routine: str,
        args: Sequence[Value],
        arg_shadows: Sequence[int],
    ) -> int:
        ret_label = CLEAN
        if self.library_taint.handles(routine):
            arg_params = [self.expand(l) for l in arg_shadows]
            effect = self.library_taint.effect(routine, args, arg_params)
            for pname in effect.return_label_params:
                ret_label = self.labels.union(
                    ret_label, self.labels.create(pname)
                )
            self.report.record_library(
                callpath, caller, routine, effect.dependency_params
            )
        # Data-flow through the library call: the return value also carries
        # its argument labels (conservative, e.g. MPI_Allreduce of a tainted
        # value returns a tainted value).
        if self.data_flow:
            for alabel in arg_shadows:
                ret_label = self.labels.union(ret_label, alabel)
        return ret_label

    # -- call protocol ---------------------------------------------------------

    def on_function_entered(self, name: str) -> None:
        self.executed.add(name)

    def on_recursive_call(self, name: str) -> None:
        msg = (
            f"recursive call to '{name}' encountered during taint "
            "analysis; results are over-approximate"
        )
        if self.strict_recursion:
            raise RecursionUnsupportedError(msg)
        self.report.warn(msg)


__all__ = ["TaintDomain"]
