"""Taint propagation policy.

The paper's framework (section 3.2, after Clause et al.) is parameterized by
(a) sources, (b) a propagation policy, (c) sinks.  The policy fixes

* the *mapping function* joining labels — set union here, since the loop
  analysis only needs the presence of parameters (section 4.1);
* the *affected data* — which flows propagate labels:

  - **data flow**: operation inputs to outputs, argument to return value;
  - **explicit control flow**: a tainted branch/loop condition taints
    values assigned under its control (the LULESH ``regElemSize`` example
    of section 5.2 requires this);
  - **implicit flow** (optional, off by default as in DFSan): values a
    *not-taken* branch would have assigned also depend on the condition
    (the ``if (c) d = pow(d, 2)`` example of section 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PropagationPolicy:
    """Which flows propagate taint labels."""

    data_flow: bool = True
    control_flow: bool = True
    implicit_flow: bool = False

    def validate(self) -> None:
        """Reject configurations the engine cannot honor."""
        if self.implicit_flow and not self.control_flow:
            raise ValueError(
                "implicit_flow requires control_flow propagation"
            )


#: Policy used throughout the paper's evaluation: full data + explicit
#: control flow (section 4.1: "our analysis requires the propagation of
#: taint across data flow and control flow").
FULL_POLICY = PropagationPolicy(data_flow=True, control_flow=True)

#: Data-flow-only policy, used by the control-flow ablation benchmark to
#: demonstrate the missed ``regElemSize``-style dependencies.
DATAFLOW_ONLY = PropagationPolicy(data_flow=True, control_flow=False)
