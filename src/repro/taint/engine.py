"""The tainted interpreter: dynamic taint analysis for performance modeling.

Extends the metered interpreter with DFSan-style shadow state and the
paper's propagation policy (section 4.1):

* **sources** — entry arguments marked as performance parameters (plus
  library sources such as ``MPI_Comm_size``);
* **propagation** — set-union mapping over data flow and explicit control
  flow (optionally implicit flow);
* **sinks** — every loop exit condition (loop-count parameter
  identification) and every non-loop conditional branch (algorithm
  selection, section 4.4); library calls record parametric dependencies
  from the library database (section 5.3).

The engine always interprets loops iteration-by-iteration (the O(1) cost
fast path is disabled): taint runs use small representative configurations,
exactly like the paper's LULESH ``size=5``, 8-rank taint run.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping, Sequence

from ..errors import (
    ArityError,
    InterpreterError,
    RecursionUnsupportedError,
    UndefinedFunctionError,
    UndefinedVariableError,
)
from ..interp.config import DEFAULT_CONFIG, ExecConfig
from ..interp.events import CostKind, ExecutionListener
from ..interp.interpreter import (
    FLOW_BREAK,
    FLOW_CONTINUE,
    FLOW_NORMAL,
    FLOW_RETURN,
    Interpreter,
)
from ..interp.semantics import (
    MATH_INTRINSICS,
    alloc_array,
    apply_binop,
    apply_unop,
    bad_loop_step,
    call_depth_exceeded,
    check_work_amount,
    require_array,
)
from ..interp.metrics import MetricsCollector
from ..interp.runtime import LibraryRuntime
from ..interp.values import Value, truthy
from ..ir.expr import BinOp, Call, Const, Expr, Intrinsic, Load, UnOp, Var
from ..ir.program import Program
from ..ir.stmt import (
    Assign,
    Break,
    Continue,
    ExprStmt,
    For,
    If,
    Return,
    Stmt,
    Store,
    While,
    assigned_names,
)
from .label import CLEAN, LabelTable
from .policy import FULL_POLICY, PropagationPolicy
from .report import TaintReport
from .shadow import ShadowFrame, ShadowHeap
from .sources import LibraryTaintModel, NoLibraryTaint, SourceSpec


@dataclass
class TaintRunResult:
    """Outcome of one tainted execution."""

    value: Value
    report: TaintReport
    metrics: MetricsCollector


@dataclass(frozen=True)
class _ControlEntry:
    """One active tainted control region."""

    label: int
    kind: str  # "branch" | "loop"
    #: Names assigned inside the region (loop entries only).
    assigned: frozenset[str]


class TaintInterpreter(Interpreter):
    """Interpreter with shadow state and taint sinks.

    ``strict_recursion=True`` raises on recursive calls instead of warning
    (the paper's analysis "does not support recursive functions" but "warns
    of over-approximation when recursion is detected").
    """

    def __init__(
        self,
        program: Program,
        runtime: LibraryRuntime | None = None,
        config: ExecConfig = DEFAULT_CONFIG,
        listener: ExecutionListener | None = None,
        policy: PropagationPolicy = FULL_POLICY,
        library_taint: LibraryTaintModel | None = None,
        strict_recursion: bool = False,
    ) -> None:
        policy.validate()
        super().__init__(
            program,
            runtime=runtime,
            config=replace(config, fast_loops=False),
            listener=listener,
        )
        self.policy = policy
        self.library_taint: LibraryTaintModel = library_taint or NoLibraryTaint()
        self.strict_recursion = strict_recursion
        self.labels = LabelTable()
        self.report = TaintReport()
        self.heap = ShadowHeap()
        self._shadow: list[ShadowFrame] = []
        # Control-dependency stack.  Branch entries always propagate their
        # label to values assigned under them; loop entries propagate only
        # to values that read loop-carried state (the loop variable or a
        # name assigned inside the loop body) -- matching the paper's
        # section 5.2 semantics: control flow taints "variables whose
        # values depend on the control flow" (regElemSize++ depends on the
        # iteration count; a loop-invariant assignment does not).
        self._control: list[_ControlEntry] = []
        self._executed: set[str] = set()

    # ------------------------------------------------------------------
    # entry point

    def analyze(
        self,
        args: Mapping[str, Value],
        sources: "SourceSpec | dict[str, str] | Sequence[str]",
        entry: str | None = None,
    ) -> TaintRunResult:
        """Run the program with *args*, tainting the arguments named by
        *sources*, and return the taint report."""
        if not isinstance(sources, SourceSpec):
            sources = SourceSpec.from_mapping(sources)
        name = entry or self.program.entry
        fn = self.program.function(name)
        missing = [p for p in fn.params if p not in args]
        if missing:
            raise InterpreterError(
                f"missing entry argument(s) {missing} for '{name}'"
            )
        argvals = [args[p] for p in fn.params]
        arglabels = [CLEAN] * len(argvals)
        for src in sources.parameters:
            if src.argument not in fn.params:
                raise InterpreterError(
                    f"taint source '{src.argument}' is not a parameter of "
                    f"'{name}'"
                )
            idx = fn.params.index(src.argument)
            arglabels[idx] = self.labels.create(src.label_name())
        self.report.parameters = sources.label_names()
        value, _label = self._call_tainted(name, argvals, arglabels)
        self.report.executed_functions = frozenset(self._executed)
        self._check_recursion_warning()
        return TaintRunResult(value, self.report, self.metrics)

    def _check_recursion_warning(self) -> None:
        from ..ir.callgraph import build_callgraph

        cg = build_callgraph(self.program)
        rec = cg.recursive_functions() & self._executed
        for name in sorted(rec):
            self.report.warn(
                f"recursion detected in '{name}': loop analysis is "
                "over-approximate (paper section 4.1)"
            )

    # ------------------------------------------------------------------
    # helpers

    def _expand(self, label: int) -> frozenset[str]:
        return self.labels.expand(label)

    @property
    def _frame(self) -> ShadowFrame:
        return self._shadow[-1]

    def _control_label(self, reads: frozenset[str]) -> int:
        """Control labels applying to a value computed from *reads*."""
        if not self.policy.control_flow:
            return CLEAN
        out = CLEAN
        for entry in self._control:
            if entry.kind == "branch" or (reads & entry.assigned):
                out = self.labels.union(out, entry.label)
        return out

    def _with_control(self, label: int, reads: frozenset[str] = frozenset()) -> int:
        """Label to attach to an assigned value under the current policy."""
        if self.policy.control_flow:
            return self.labels.union(label, self._control_label(reads))
        return label

    # ------------------------------------------------------------------
    # calls

    def _call_tainted(
        self, name: str, args: Sequence[Value], arglabels: Sequence[int]
    ) -> tuple[Value, int]:
        fn = self.program.function(name)
        if len(args) != len(fn.params):
            raise ArityError(name, len(fn.params), len(args))
        if name in self._fn_stack:
            msg = (
                f"recursive call to '{name}' encountered during taint "
                "analysis; results are over-approximate"
            )
            if self.strict_recursion:
                raise RecursionUnsupportedError(msg)
            self.report.warn(msg)
        if self._depth >= self.config.max_call_depth:
            raise call_depth_exceeded(name, self.config.max_call_depth)
        env: dict[str, Value] = dict(zip(fn.params, args))
        frame = ShadowFrame()
        for pname, plabel in zip(fn.params, arglabels):
            frame.set(pname, plabel)
        self._depth += 1
        self._fn_stack.append(name)
        self._shadow.append(frame)
        self._executed.add(name)
        self.metrics.on_enter(name)
        self.listener.on_enter(name)
        try:
            flow, value, label = self._texec_block(fn.body, env)
            if flow == FLOW_RETURN:
                return value, self._with_control(label)
            return None, CLEAN  # void call
        finally:
            self.metrics.on_exit(name)
            self.listener.on_exit(name)
            self._shadow.pop()
            self._fn_stack.pop()
            self._depth -= 1

    def _call_library_tainted(
        self, name: str, args: Sequence[Value], arglabels: Sequence[int]
    ) -> tuple[Value, int]:
        result = self.runtime.call(name, args)
        self.metrics.on_enter(name)
        self.listener.on_enter(name)
        for kind, amount in result.costs.items():
            self._charge(kind, amount)
        self.metrics.on_exit(name)
        self.listener.on_exit(name)

        ret_label = CLEAN
        if self.library_taint.handles(name):
            arg_params = [self._expand(l) for l in arglabels]
            effect = self.library_taint.effect(name, args, arg_params)
            for pname in effect.return_label_params:
                ret_label = self.labels.union(ret_label, self.labels.create(pname))
            caller = self._fn_stack[-1] if self._fn_stack else "<toplevel>"
            self.report.record_library(
                tuple(self._fn_stack), caller, name, effect.dependency_params
            )
        # Data-flow through the library call: the return value also carries
        # its argument labels (conservative, e.g. MPI_Allreduce of a tainted
        # value returns a tainted value).
        if self.policy.data_flow:
            for alabel in arglabels:
                ret_label = self.labels.union(ret_label, alabel)
        return result.value, self._with_control(ret_label)

    # ------------------------------------------------------------------
    # statements

    def _texec_block(
        self, body: Sequence[Stmt], env: dict[str, Value]
    ) -> tuple[int, Value, int]:
        for stmt in body:
            flow, value, label = self._texec_stmt(stmt, env)
            if flow != FLOW_NORMAL:
                return flow, value, label
        return FLOW_NORMAL, None, CLEAN

    def _texec_stmt(
        self, stmt: Stmt, env: dict[str, Value]
    ) -> tuple[int, Value, int]:
        self._step()
        if isinstance(stmt, Assign):
            self._charge(CostKind.COMPUTE, self.config.stmt_cost)
            value, label = self._teval(stmt.value, env)
            env[stmt.name] = value
            self._frame.set(
                stmt.name, self._with_control(label, stmt.value.free_vars())
            )
            return FLOW_NORMAL, None, CLEAN
        if isinstance(stmt, ExprStmt):
            self._charge(CostKind.COMPUTE, self.config.stmt_cost)
            self._teval(stmt.expr, env)
            return FLOW_NORMAL, None, CLEAN
        if isinstance(stmt, Store):
            self._charge(CostKind.COMPUTE, self.config.stmt_cost)
            arr = require_array(
                self._lookup(stmt.array, env), stmt.array, self.current_function
            )
            idx, idx_label = self._teval(stmt.index, env)
            val, val_label = self._teval(stmt.value, env)
            arr.store(int(idx), float(val))
            # A tainted index makes the written value's location depend on
            # the parameter: propagate both labels into the element.
            reads = stmt.index.free_vars() | stmt.value.free_vars()
            label = self._with_control(
                self.labels.union(val_label, idx_label), reads
            )
            self.heap.store(arr, int(idx), label, self.labels.union)
            return FLOW_NORMAL, None, CLEAN
        if isinstance(stmt, Return):
            if stmt.value is None:
                return FLOW_RETURN, None, CLEAN
            value, label = self._teval(stmt.value, env)
            return FLOW_RETURN, value, label
        if isinstance(stmt, Break):
            return FLOW_BREAK, None, CLEAN
        if isinstance(stmt, Continue):
            return FLOW_CONTINUE, None, CLEAN
        if isinstance(stmt, If):
            return self._texec_if(stmt, env)
        if isinstance(stmt, For):
            return self._texec_for(stmt, env)
        if isinstance(stmt, While):
            return self._texec_while(stmt, env)
        raise InterpreterError(f"cannot execute {type(stmt).__name__}")

    def _texec_if(self, stmt: If, env: dict[str, Value]) -> tuple[int, Value, int]:
        cond, cond_label = self._teval(stmt.cond, env)
        taken = truthy(cond)
        fn = self.current_function
        # Branch sink (paper 4.4): record condition labels and the direction.
        self.report.record_branch(
            tuple(self._fn_stack), fn, stmt.branch_id, self._expand(cond_label), taken
        )
        if self.policy.implicit_flow and cond_label != CLEAN:
            skipped = stmt.else_body if taken else stmt.then_body
            for name in assigned_names(skipped):
                if name in env:
                    self._frame.set(
                        name, self.labels.union(self._frame.get(name), cond_label)
                    )
        body = stmt.then_body if taken else stmt.else_body
        if self.policy.control_flow and cond_label != CLEAN:
            self._control.append(
                _ControlEntry(cond_label, "branch", frozenset())
            )
            try:
                return self._texec_block(body, env)
            finally:
                self._control.pop()
        return self._texec_block(body, env)

    def _texec_for(self, stmt: For, env: dict[str, Value]) -> tuple[int, Value, int]:
        start, start_label = self._teval(stmt.start, env)
        stop, stop_label = self._teval(stmt.stop, env)
        step, step_label = self._teval(stmt.step, env)
        if not isinstance(step, (int, float)) or step <= 0:
            raise bad_loop_step(step, self.current_function)
        # The loop exit condition is ``var < stop`` with var derived from
        # start and step: its label is the union of all three (the sink of
        # the loop-count analysis, paper 4.1).
        cond_label = self.labels.union_all([start_label, stop_label, step_label])
        fn = self.current_function

        env[stmt.var] = start
        var_label = self._with_control(
            self.labels.union(start_label, step_label)
        )
        self._frame.set(stmt.var, var_label)  # reads nothing loop-carried

        iters = 0
        flow: int = FLOW_NORMAL
        value: Value = None
        label: int = CLEAN
        push_control = self.policy.control_flow and cond_label != CLEAN
        if push_control:
            self._control.append(
                _ControlEntry(
                    cond_label,
                    "loop",
                    assigned_names(stmt.body) | {stmt.var},
                )
            )
        try:
            while env[stmt.var] < stop:
                self._step()
                self._charge(CostKind.COMPUTE, self.config.loop_iter_cost)
                iters += 1
                flow, value, label = self._texec_block(stmt.body, env)
                if flow == FLOW_BREAK:
                    flow = FLOW_NORMAL
                    break
                if flow == FLOW_RETURN:
                    break
                env[stmt.var] = env[stmt.var] + step
                # Body assignments to the loop variable feed the exit
                # condition: fold its current label into the sink.
                cond_label = self.labels.union(
                    cond_label, self._frame.get(stmt.var)
                )
        finally:
            if push_control:
                self._control.pop()

        self.report.record_loop(
            tuple(self._fn_stack), fn, stmt.loop_id, self._expand(cond_label), iters
        )
        if iters:
            self.metrics.on_loop_iterations(fn, stmt.loop_id, iters)
            self.listener.on_loop_iterations(fn, stmt.loop_id, iters)
        if flow == FLOW_RETURN:
            return flow, value, label
        return FLOW_NORMAL, None, CLEAN

    def _texec_while(
        self, stmt: While, env: dict[str, Value]
    ) -> tuple[int, Value, int]:
        fn = self.current_function
        iters = 0
        flow: int = FLOW_NORMAL
        value: Value = None
        label: int = CLEAN
        sink_label = CLEAN
        while True:
            cond, cond_label = self._teval(stmt.cond, env)
            sink_label = self.labels.union(sink_label, cond_label)
            if not truthy(cond):
                break
            self._step()
            self._charge(CostKind.COMPUTE, self.config.loop_iter_cost)
            iters += 1
            push_control = self.policy.control_flow and cond_label != CLEAN
            if push_control:
                self._control.append(
                    _ControlEntry(
                        cond_label, "loop", assigned_names(stmt.body)
                    )
                )
            try:
                flow, value, label = self._texec_block(stmt.body, env)
            finally:
                if push_control:
                    self._control.pop()
            if flow == FLOW_BREAK:
                flow = FLOW_NORMAL
                break
            if flow == FLOW_RETURN:
                break
        self.report.record_loop(
            tuple(self._fn_stack), fn, stmt.loop_id, self._expand(sink_label), iters
        )
        if iters:
            self.metrics.on_loop_iterations(fn, stmt.loop_id, iters)
            self.listener.on_loop_iterations(fn, stmt.loop_id, iters)
        if flow == FLOW_RETURN:
            return flow, value, label
        return FLOW_NORMAL, None, CLEAN

    # ------------------------------------------------------------------
    # expressions

    def _teval(self, expr: Expr, env: dict[str, Value]) -> tuple[Value, int]:
        if isinstance(expr, Const):
            return expr.value, CLEAN
        if isinstance(expr, Var):
            return self._lookup(expr.name, env), self._frame.get(expr.name)
        if isinstance(expr, BinOp):
            op = expr.op
            if op in ("and", "or"):
                lhs, llabel = self._teval(expr.lhs, env)
                take_rhs = truthy(lhs) if op == "and" else not truthy(lhs)
                if take_rhs:
                    rhs, rlabel = self._teval(expr.rhs, env)
                    return rhs, self._join_data(llabel, rlabel)
                return lhs, llabel
            lhs, llabel = self._teval(expr.lhs, env)
            rhs, rlabel = self._teval(expr.rhs, env)
            return apply_binop(op, lhs, rhs), self._join_data(llabel, rlabel)
        if isinstance(expr, UnOp):
            operand, label = self._teval(expr.operand, env)
            value = apply_unop(expr.op, operand)
            return value, label if self.policy.data_flow else CLEAN
        if isinstance(expr, Load):
            arr = require_array(
                self._lookup(expr.array, env), expr.array, self.current_function
            )
            idx, idx_label = self._teval(expr.index, env)
            value = arr.load(int(idx))
            elem_label = self.heap.load(arr, int(idx))
            return value, self._join_data(elem_label, idx_label)
        if isinstance(expr, Intrinsic):
            return self._teval_intrinsic(expr, env)
        if isinstance(expr, Call):
            values: list[Value] = []
            labs: list[int] = []
            for a in expr.args:
                v, l = self._teval(a, env)
                values.append(v)
                labs.append(l if self.policy.data_flow else CLEAN)
            self._charge(CostKind.COMPUTE, self.config.call_cost)
            if expr.callee in self.program:
                return self._call_tainted(expr.callee, values, labs)
            if self.runtime.handles(expr.callee):
                return self._call_library_tainted(expr.callee, values, labs)
            raise UndefinedFunctionError(expr.callee)
        raise InterpreterError(f"cannot evaluate {type(expr).__name__}")

    def _join_data(self, a: int, b: int) -> int:
        if not self.policy.data_flow:
            return CLEAN
        return self.labels.union(a, b)

    def _teval_intrinsic(
        self, expr: Intrinsic, env: dict[str, Value]
    ) -> tuple[Value, int]:
        name = expr.name
        if name in ("work", "mem_work"):
            amount, label = self._teval(expr.args[0], env)
            amount = check_work_amount(float(amount))
            kind = CostKind.COMPUTE if name == "work" else CostKind.MEMORY
            self._charge(kind, amount)
            return amount, label if self.policy.data_flow else CLEAN
        if name == "alloc":
            size, _label = self._teval(expr.args[0], env)
            arr, cost = alloc_array(size)
            self._charge(CostKind.MEMORY, cost)
            return arr, CLEAN
        value, label = self._teval(expr.args[0], env)
        if not self.policy.data_flow:
            label = CLEAN
        fn = MATH_INTRINSICS.get(name)
        if fn is None:
            raise InterpreterError(f"unknown intrinsic {name!r}")
        return fn(value), label

    # ------------------------------------------------------------------
    # make sure untainted entry points still work

    def _lookup(self, name: str, env: dict[str, Value]) -> Value:
        try:
            return env[name]
        except KeyError:
            raise UndefinedVariableError(name, self.current_function) from None
