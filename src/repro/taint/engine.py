"""The taint engine: dynamic taint analysis for performance modeling.

A thin driver over the generic execution substrate: taint semantics live
in the :class:`~repro.taint.domain.TaintDomain` (an
:class:`~repro.interp.domain.AnalysisDomain`), and *any* registered
engine whose registry entry declares ``supports_taint`` can execute a
taint run — the tree-walking
:class:`~repro.interp.shadowtree.ShadowInterpreter` and the
closure-compiling :class:`~repro.interp.shadowjit.CompiledShadowEngine`
produce bit-identical :class:`~repro.taint.report.TaintReport` objects
(enforced by ``tests/interp/test_compiled_differential.py``).

The analysis itself follows the paper (section 4.1):

* **sources** — entry arguments marked as performance parameters (plus
  library sources such as ``MPI_Comm_size``);
* **propagation** — set-union mapping over data flow and explicit control
  flow (optionally implicit flow);
* **sinks** — every loop exit condition (loop-count parameter
  identification) and every non-loop conditional branch (algorithm
  selection, section 4.4); library calls record parametric dependencies
  from the library database (section 5.3).

Engines always execute taint loops iteration-by-iteration (the O(1) cost
fast path is disabled): taint runs use small representative configurations,
exactly like the paper's LULESH ``size=5``, 8-rank taint run.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping, Sequence

from ..errors import InterpreterError
from ..interp import (
    DEFAULT_TAINT_ENGINE,
    ENGINE_TREE,
    make_engine,
)
from ..interp.config import DEFAULT_CONFIG, ExecConfig
from ..interp.semantics import resolve_entry_args
from ..interp.events import ExecutionListener
from ..interp.metrics import MetricsCollector
from ..interp.runtime import LibraryRuntime
from ..interp.values import Value
from ..ir.program import Program
from .domain import TaintDomain
from .label import CLEAN
from .policy import FULL_POLICY, PropagationPolicy
from .report import TaintReport
from .sources import LibraryTaintModel, SourceSpec


@dataclass
class TaintRunResult:
    """Outcome of one tainted execution."""

    value: Value
    report: TaintReport
    metrics: MetricsCollector


class TaintEngine:
    """Dynamic taint analysis over a pluggable execution engine.

    Parameters mirror the plain engines plus the taint knobs:

    ``policy``
        Which flows propagate labels
        (:class:`~repro.taint.policy.PropagationPolicy`).
    ``library_taint``
        Taint semantics of library routines (the library database).
    ``strict_recursion``
        Raise on recursive calls instead of warning (the paper's
        analysis "does not support recursive functions" but "warns of
        over-approximation when recursion is detected").
    ``engine``
        A registered engine name whose entry declares ``supports_taint``
        (default: the compiled engine; ``"tree"`` gives the classic
        tree-walker).  Both built-ins are bit-identical.
    """

    def __init__(
        self,
        program: Program,
        runtime: LibraryRuntime | None = None,
        config: ExecConfig = DEFAULT_CONFIG,
        listener: ExecutionListener | None = None,
        policy: PropagationPolicy = FULL_POLICY,
        library_taint: LibraryTaintModel | None = None,
        strict_recursion: bool = False,
        engine: str = DEFAULT_TAINT_ENGINE,
    ) -> None:
        self.program = program
        self.policy = policy
        self.engine_name = engine
        self.domain = TaintDomain(
            policy=policy,
            library_taint=library_taint,
            strict_recursion=strict_recursion,
        )
        # Taint runs always iterate genuinely (small representative
        # configurations; the loop sinks need every trip).
        self._config = replace(config, fast_loops=False)
        self._runtime = runtime
        self._listener = listener
        self._engine = make_engine(
            program,
            engine,
            runtime=runtime,
            config=self._config,
            listener=listener,
            domain=self.domain,
        )
        #: Lazily built concrete sibling for analysis-free run() calls.
        self._concrete = None

    # ------------------------------------------------------------------
    # convenience views

    @property
    def labels(self):
        """The domain's label table."""
        return self.domain.labels

    @property
    def report(self) -> TaintReport:
        """The (mutable) report the domain records into."""
        return self.domain.report

    @property
    def heap(self):
        """The domain's shadow heap."""
        return self.domain.heap

    @property
    def metrics(self) -> MetricsCollector:
        """The underlying engine's metrics collector."""
        return self._engine.metrics

    @property
    def config(self) -> ExecConfig:
        """The underlying engine's execution config (fast loops off)."""
        return self._engine.config

    @property
    def runtime(self) -> LibraryRuntime:
        """The underlying engine's library runtime."""
        return self._engine.runtime

    @property
    def listener(self) -> ExecutionListener:
        """The underlying engine's execution listener."""
        return self._engine.listener

    def run(self, args=(), entry: str | None = None):
        """Concrete, analysis-free run of the program.

        Matches the pre-refactor ``TaintInterpreter.run()``: no sources,
        no sink recording — the analysis state (:attr:`report`,
        :attr:`labels`, :attr:`heap`) is untouched, so interleaving
        ``run()`` with :meth:`analyze` cannot corrupt a report.
        Executes on a separate concrete engine of the same registered
        family (same runtime/config/listener); its metrics travel in the
        returned :class:`~repro.interp.metrics.RunResult`, not in
        :attr:`metrics`.
        """
        if self._concrete is None:
            self._concrete = make_engine(
                self.program,
                self.engine_name,
                runtime=self._runtime,
                config=self._config,
                listener=self._listener,
            )
        return self._concrete.run(args, entry=entry)

    @property
    def library_taint(self) -> LibraryTaintModel:
        return self.domain.library_taint

    @property
    def strict_recursion(self) -> bool:
        return self.domain.strict_recursion

    # ------------------------------------------------------------------
    # entry point

    def analyze(
        self,
        args: Mapping[str, Value],
        sources: "SourceSpec | dict[str, str] | Sequence[str]",
        entry: str | None = None,
    ) -> TaintRunResult:
        """Run the program with *args*, tainting the arguments named by
        *sources*, and return the taint report."""
        if not isinstance(sources, SourceSpec):
            sources = SourceSpec.from_mapping(sources)
        domain = self.domain
        name, fn, argvals = resolve_entry_args(self.program, args, entry)
        arglabels = [CLEAN] * len(argvals)
        for src in sources.parameters:
            if src.argument not in fn.params:
                raise InterpreterError(
                    f"taint source '{src.argument}' is not a parameter of "
                    f"'{name}'"
                )
            idx = fn.params.index(src.argument)
            arglabels[idx] = domain.source_label(src.label_name())
        domain.report.parameters = sources.label_names()
        value, _label = self._engine.call_shadow(name, argvals, arglabels)
        domain.report.executed_functions = frozenset(domain.executed)
        self._check_recursion_warning()
        return TaintRunResult(value, domain.report, self._engine.metrics)

    def _check_recursion_warning(self) -> None:
        from ..ir.callgraph import build_callgraph

        cg = build_callgraph(self.program)
        rec = cg.recursive_functions() & self.domain.executed
        for name in sorted(rec):
            self.domain.report.warn(
                f"recursion detected in '{name}': loop analysis is "
                "over-approximate (paper section 4.1)"
            )


class TaintInterpreter(TaintEngine):
    """Backward-compatible taint entry point, pinned to the tree-walker.

    Before the analysis-domain refactor this class *was* the taint
    implementation (an :class:`~repro.interp.interpreter.Interpreter`
    subclass with inlined shadow state).  It is now a thin
    :class:`TaintEngine` defaulting to the tree engine: the analysis
    contract (constructor, :meth:`analyze`, reports) is unchanged, and
    ``run``/``config``/``runtime``/``listener`` delegate to the
    underlying engine — but it is no longer an ``Interpreter``
    *subclass*, so ``isinstance(x, Interpreter)`` checks no longer
    hold.  New code should use :class:`TaintEngine` (compiled by
    default) or pass ``engine=`` explicitly.
    """

    def __init__(
        self,
        program: Program,
        runtime: LibraryRuntime | None = None,
        config: ExecConfig = DEFAULT_CONFIG,
        listener: ExecutionListener | None = None,
        policy: PropagationPolicy = FULL_POLICY,
        library_taint: LibraryTaintModel | None = None,
        strict_recursion: bool = False,
        engine: str = ENGINE_TREE,
    ) -> None:
        super().__init__(
            program,
            runtime=runtime,
            config=config,
            listener=listener,
            policy=policy,
            library_taint=library_taint,
            strict_recursion=strict_recursion,
            engine=engine,
        )


__all__ = ["TaintEngine", "TaintInterpreter", "TaintRunResult"]
