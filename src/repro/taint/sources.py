"""Taint sources and the library taint model protocol.

Sources are "all potentially performance-relevant parameters of a program"
(paper 4.1): memory locations the performance engineer marks explicitly with
``register_variable``-style annotations, plus *library* sources — values a
library writes that carry implicit parameters, the canonical example being
``MPI_Comm_size`` writing the communicator size (implicit parameter ``p``,
section 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, Sequence

from ..interp.values import Value


@dataclass(frozen=True)
class ParameterSource:
    """One explicitly marked program parameter.

    ``argument`` names the entry-function argument to taint; ``label`` is
    the label name under which it appears in reports (defaults to the
    argument name, like ``register_variable(&opts.nx, "size")`` lets the
    user rename).
    """

    argument: str
    label: str = ""

    def label_name(self) -> str:
        return self.label or self.argument


@dataclass
class SourceSpec:
    """The full source specification for one tainted run."""

    parameters: list[ParameterSource] = field(default_factory=list)

    @classmethod
    def from_mapping(cls, mapping: "dict[str, str] | Sequence[str]") -> "SourceSpec":
        """Build from ``{arg: label}`` or a plain list of argument names."""
        if isinstance(mapping, dict):
            params = [ParameterSource(a, l) for a, l in mapping.items()]
        else:
            params = [ParameterSource(a) for a in mapping]
        return cls(params)

    def label_names(self) -> tuple[str, ...]:
        return tuple(p.label_name() for p in self.parameters)


@dataclass
class LibraryTaintEffect:
    """Taint-relevant outcome of one library routine invocation.

    ``return_label_params``: implicit parameters carried by the return
    value (``MPI_Comm_size`` -> ``{"p"}``).
    ``dependency_params``: parameters the routine's *performance* depends
    on — recorded as a function-level dependency of the caller (e.g. every
    MPI collective depends on ``p``; message-size-dependent routines add
    the labels of their ``count`` argument, section 5.3).
    """

    return_label_params: frozenset[str] = frozenset()
    dependency_params: frozenset[str] = frozenset()


class LibraryTaintModel(Protocol):
    """Taint semantics of library routines (implemented by the library DB)."""

    def handles(self, routine: str) -> bool:
        """True if this model describes *routine*."""

    def effect(
        self,
        routine: str,
        args: Sequence[Value],
        arg_params: Sequence[frozenset[str]],
    ) -> LibraryTaintEffect:
        """Taint effect of calling *routine* with the given argument values
        and per-argument parameter sets."""


class NoLibraryTaint:
    """Model that knows no routines (treats library calls as clean)."""

    def handles(self, routine: str) -> bool:  # noqa: D102
        return False

    def effect(
        self,
        routine: str,
        args: Sequence[Value],
        arg_params: Sequence[frozenset[str]],
    ) -> LibraryTaintEffect:  # noqa: D102
        return LibraryTaintEffect()
