"""The public Campaign API, in one import.

Everything needed to express, extend, and execute runs declaratively::

    from repro import api

    campaign = api.Campaign.from_spec(
        {
            "app": "lulesh",
            "parameters": {"p": [27, 64, 125], "size": [10, 20, 30]},
            "workspace": "./campaign-ws",
        }
    )
    result = campaign.run()        # persists every stage artifact
    result = campaign.run()        # instant: all stages resume

Extension points are the decorator registries (see
:mod:`repro.registry`): register a workload, engine, noise/contention
model, or design strategy, and it becomes addressable from campaign specs
and the CLI alongside the built-ins.  Importing this module loads every
bundled component, so the registries are always fully populated.
"""

from __future__ import annotations

from .core.artifacts import ArtifactStore, artifact_fingerprint
from .core.pipeline import PerfTaintPipeline, PerfTaintResult
from .core.stages import (
    STAGES,
    Campaign,
    MeasureScheduler,
    Stage,
    run_classify_stage,
    run_design_stage,
    run_measure_stage,
    run_model_stage,
    run_plan_stage,
    run_static_stage,
    run_taint_stage,
    run_validate_stage,
    run_volumes_stage,
)
from .errors import (
    ArtifactError,
    CampaignSpecError,
    LeaseTimeout,
    PipelineError,
    ProtocolVersionMismatch,
    RegistryError,
    ReproError,
    ServiceError,
)
from .service import (
    Broker,
    BrokerScheduler,
    CampaignService,
    LocalStore,
    RemoteStore,
    ServiceClient,
    SharedWorkspace,
    Worker,
    serve,
)
from .interp import AnalysisDomain, make_engine
from .modeling import (
    DEFAULT_MODEL_BACKEND,
    Modeler,
    ModelSearchBackend,
    make_model_backend,
)
from .registry import (
    CONTENTION_REGISTRY,
    DESIGN_REGISTRY,
    ENGINE_REGISTRY,
    MODEL_BACKEND_REGISTRY,
    NOISE_REGISTRY,
    WORKLOAD_REGISTRY,
    Registry,
    RegistryEntry,
    load_builtin_components,
    register_contention,
    register_design,
    register_engine,
    register_model_backend,
    register_noise,
    register_workload,
)
from .taint import (
    PropagationPolicy,
    TaintDomain,
    TaintEngine,
    TaintReport,
)

load_builtin_components()

__all__ = [
    "AnalysisDomain",
    "ArtifactError",
    "ArtifactStore",
    "Broker",
    "BrokerScheduler",
    "CONTENTION_REGISTRY",
    "Campaign",
    "CampaignService",
    "CampaignSpecError",
    "DEFAULT_MODEL_BACKEND",
    "DESIGN_REGISTRY",
    "ENGINE_REGISTRY",
    "LeaseTimeout",
    "LocalStore",
    "MODEL_BACKEND_REGISTRY",
    "MeasureScheduler",
    "Modeler",
    "ModelSearchBackend",
    "NOISE_REGISTRY",
    "PerfTaintPipeline",
    "PerfTaintResult",
    "PipelineError",
    "PropagationPolicy",
    "ProtocolVersionMismatch",
    "Registry",
    "RegistryEntry",
    "RegistryError",
    "RemoteStore",
    "ReproError",
    "STAGES",
    "ServiceClient",
    "ServiceError",
    "SharedWorkspace",
    "Stage",
    "TaintDomain",
    "TaintEngine",
    "TaintReport",
    "WORKLOAD_REGISTRY",
    "Worker",
    "artifact_fingerprint",
    "load_builtin_components",
    "make_engine",
    "make_model_backend",
    "serve",
    "register_contention",
    "register_design",
    "register_engine",
    "register_model_backend",
    "register_noise",
    "register_workload",
    "run_classify_stage",
    "run_design_stage",
    "run_measure_stage",
    "run_model_stage",
    "run_plan_stage",
    "run_static_stage",
    "run_taint_stage",
    "run_validate_stage",
    "run_volumes_stage",
]
