"""The measure-stage broker: adaptive leases, merged in design order.

The broker owns one side of the campaign service's central invariant:

    *for any worker count, worker mix, lease sizing, and failure
    schedule, a distributed measure stage is bit-identical to the
    single-process runners.*

It holds that invariant the same way the process-pool runners do —
workers only ever compute :class:`~repro.measure.experiment.ConfigRunResult`
values whose noise streams are derived purely from
``(seed, function, configuration key, repetition)``, and the broker
merges them **by design index**, never by completion order.  Which
worker ran a chunk, how chunks were sized, and how many times work was
re-queued after a crash are all invisible in the output.

Capability-aware leases: pending work lives in design-ordered pools
(one per ``exec_config``/``entry`` group, the unit a batch-capable
worker can run as one tensor pass), and every :meth:`Broker.claim` cuts
a lease sized to the *claiming* worker — workers advertise
``supports_batch`` and a measured lanes/sec capability in their claim,
the broker folds per-lease wall-clock telemetry into a per-worker rate
estimate (EWMA), and sizes each lease to ``target_lease_seconds`` of
that worker's work.  A batch-capable worker on a batch job gets a big
tensor chunk; a scalar worker gets a one-configuration probe until its
rate is known.  When the pools are dry, a claim may instead **split a
straggler**: the tail half of the longest-held active lease (bounded by
``max_splits``) is ceded to the idle claimant, and whichever copy
reports first wins — duplicated work is the designed cost, never
corruption.

Fault tolerance is lease-based: a claim carries a TTL; leases that are
neither completed nor failed before the deadline are reaped and their
unfinished configurations re-pooled (the crashed-worker path), and
explicit failures re-pool immediately.  Attempts are tracked **per
configuration** (they follow the work across re-leases); after
``max_attempts`` a configuration poisons its job with a
:class:`~repro.errors.LeaseTimeout` naming the lease, the job, and the
affected fingerprints.

Fleet-wide dedupe: given a store, the broker checks the ``runs``
namespace (keyed by
:func:`~repro.measure.parallel.configuration_fingerprint`) before
pooling — one batched ``has_many`` round trip when the store supports
it — and publishes completed results back, so two campaigns sharing
configurations execute each profiled run once between them.  Within a
job, design indices sharing a fingerprint lease only their first
occurrence; the result is broadcast to the duplicates on arrival.

Crash safety: given a :class:`~repro.service.journal.ServiceJournal`,
every job checkpoints its merge progress under a **content fingerprint**
of the measure task + configuration fingerprints.  A broker restarted on
the same state directory that receives the same job re-adopts the merged
prefix from the runs store (the checkpoint tells it which store hits
were this job's own completions) and re-leases only the unfinished tail.
Workers that fail leases repeatedly are **quarantined** — their claims
return no work until the operator restarts them — and a draining broker
stops granting leases so in-flight work can land before shutdown.
"""

from __future__ import annotations

import bisect
import hashlib
import itertools
import json
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..errors import LeaseTimeout, ServiceError
from ..measure.batched import batch_chunks
from ..measure.experiment import (
    ConfigKey,
    ConfigRunResult,
    Measurements,
    Workload,
    config_key,
    merge_results,
)
from ..measure.instrumentation import InstrumentationPlan
from ..measure.io import (
    config_run_result_from_dict,
    config_run_result_to_dict,
    program_hash,
)
from ..measure.parallel import (
    RunStats,
    configuration_fingerprint,
    workload_repr,
)
from ..mpisim.contention import ContentionModel
from ..measure.noise import NoiseModel
from ..measure.profiler import ProfileResult
from ..registry import ENGINE_REGISTRY, load_builtin_components
from .protocol import configs_to_wire, measure_task_to_wire
from .remote_store import RUNS_NAMESPACE

#: Default seconds a claimed lease may stay unreported before reaping.
DEFAULT_LEASE_TTL = 30.0
#: Default attempts per configuration before LeaseTimeout poisons the job.
DEFAULT_MAX_ATTEMPTS = 3
#: Default seconds of work one adaptive lease should hand a worker.
DEFAULT_TARGET_LEASE_SECONDS = 2.0
#: Bound on how many times one lease's tail may be ceded to idle workers.
DEFAULT_MAX_SPLITS = 2
#: Consecutive explicit lease failures before a worker is quarantined.
DEFAULT_QUARANTINE_AFTER = 3
#: Bound on the per-lease telemetry log.
_TELEMETRY_LOG_LIMIT = 256


def measure_job_key(task_wire: Mapping, fingerprints: Sequence[str]) -> str:
    """Content fingerprint of one measure job, stable across restarts.

    A pure function of the wire-encoded measure task and the job's
    per-configuration fingerprints — the same submitted stage hashes to
    the same key in every broker incarnation, which is what lets a
    restarted broker find its predecessor's checkpoint.
    """
    canonical = json.dumps(
        {"task": task_wire, "fingerprints": list(fingerprints)},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


@dataclass
class Lease:
    """One claimed chunk of a measure job."""

    lease_id: str
    job_id: str
    indices: tuple[int, ...]
    attempt: int = 0
    worker: "str | None" = None
    #: ``time.monotonic`` deadline while claimed, else None.
    deadline: "float | None" = None
    #: ``time.monotonic`` when the lease was granted.
    claimed_at: "float | None" = None
    #: How often this lease's tail was ceded to an idle claimant.
    splits: int = 0
    #: Indices ceded to a straggler-split lease (still valid to report).
    ceded: set[int] = field(default_factory=set)

    def live_indices(self, results: Sequence) -> list[int]:
        """Indices this lease still owns and that are still unfilled."""
        return [
            i
            for i in self.indices
            if i not in self.ceded and results[i] is None
        ]


@dataclass
class MeasureJob:
    """One submitted measure stage, tracked to completion."""

    job_id: str
    workload: Workload
    parameters: tuple[str, ...]
    configs: list[dict[str, float]]
    keys: list[ConfigKey]
    fingerprints: list[str]
    task_wire: dict
    results: "list[ConfigRunResult | None]"
    cached: int = 0
    executed: int = 0
    #: Of ``cached``, how many were a prior broker incarnation's own
    #: completions for this very job (per its journal checkpoint).
    recovered: int = 0
    #: Journal checkpoint key (content fingerprint of the job), if any.
    journal_key: "str | None" = None
    error: "Exception | None" = None
    done: threading.Event = field(default_factory=threading.Event)
    #: Pending design indices, pooled per exec_config/entry group in
    #: design order — the unit one tensor pass may span.
    pending_groups: list[list[int]] = field(default_factory=list)
    #: Design index -> position of its pool in ``pending_groups``.
    group_of: dict[int, int] = field(default_factory=dict)
    #: Design index -> failed attempts so far (follows the work).
    attempts: dict[int, int] = field(default_factory=dict)
    #: The job's engine carries ``supports_batch`` metadata.
    batch_capable: bool = False
    #: Fingerprint-duplicate broadcast: leased leader -> duplicate indices.
    duplicates: dict[int, list[int]] = field(default_factory=dict)

    @property
    def remaining(self) -> int:
        return sum(1 for r in self.results if r is None)

    @property
    def pending(self) -> int:
        return sum(len(group) for group in self.pending_groups)


@dataclass
class _WorkerState:
    """What the broker knows about one claiming worker."""

    name: str
    supports_batch: bool = True
    #: Self-measured lanes/sec from the worker's claim envelope.
    reported_rate: "float | None" = None
    #: Broker-side EWMA over per-lease wall-clock completions.
    rate: "float | None" = None
    leases_completed: int = 0
    lanes_completed: int = 0
    #: Explicit lease failures this worker reported, lifetime.
    failures: int = 0
    #: Explicit failures since the last successful completion.
    consecutive_failures: int = 0
    #: Quarantined workers claim no work until operator intervention.
    quarantined: bool = False

    @property
    def best_rate(self) -> "float | None":
        return self.rate if self.rate is not None else self.reported_rate


class Broker:
    """Pools measure work, leases it per worker, merges in design order.

    Thread-safe: the campaign server drives it from HTTP handler threads
    and the in-process tests from plain worker threads, through the same
    ``claim`` / ``complete`` / ``fail`` surface the HTTP transport wraps.
    """

    def __init__(
        self,
        store=None,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        chunk_size: "int | None" = None,
        workers_hint: int = 4,
        target_lease_seconds: float = DEFAULT_TARGET_LEASE_SECONDS,
        straggler_grace: "float | None" = None,
        max_splits: int = DEFAULT_MAX_SPLITS,
        journal=None,
        quarantine_after: int = DEFAULT_QUARANTINE_AFTER,
    ) -> None:
        if lease_ttl <= 0:
            raise ValueError(f"lease_ttl must be > 0, got {lease_ttl}")
        if max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {max_attempts}"
            )
        if target_lease_seconds <= 0:
            raise ValueError(
                "target_lease_seconds must be > 0, got "
                f"{target_lease_seconds}"
            )
        self.store = store
        self.lease_ttl = float(lease_ttl)
        self.max_attempts = int(max_attempts)
        self.chunk_size = chunk_size
        self.workers_hint = max(1, int(workers_hint))
        self.target_lease_seconds = float(target_lease_seconds)
        self.straggler_grace = (
            float(straggler_grace)
            if straggler_grace is not None
            else min(self.lease_ttl / 2.0, 2.0 * self.target_lease_seconds)
        )
        self.max_splits = max(0, int(max_splits))
        self.journal = journal
        self.quarantine_after = max(1, int(quarantine_after))
        self._draining = False
        self._lock = threading.Lock()
        self._jobs: dict[str, MeasureJob] = {}
        self._active: dict[str, Lease] = {}
        self._workers: dict[str, _WorkerState] = {}
        self._lease_log: "OrderedDict[str, dict]" = OrderedDict()
        self._ids = itertools.count(1)
        load_builtin_components()

    # -- submission --------------------------------------------------------

    def submit_measure(
        self,
        workload: Workload,
        design: Sequence[Mapping[str, float]],
        plan: InstrumentationPlan,
        *,
        noise: NoiseModel,
        contention: ContentionModel,
        repetitions: int,
        seed: int,
        engine: str,
    ) -> str:
        """Queue one measure stage; returns the job id.

        The design is fingerprinted configuration by configuration;
        store hits are adopted immediately (``cached``), within-job
        fingerprint duplicates lease only their first occurrence, and
        the remaining misses are pooled in canonical design order.
        """
        configs = [dict(c) for c in design]
        parameters = tuple(workload.parameters)
        program = workload.program()
        digest = program_hash(program)
        wl_repr = workload_repr(workload)
        keys = [config_key(parameters, c) for c in configs]
        setups = [workload.setup(c) for c in configs]
        fingerprints = [
            configuration_fingerprint(
                digest,
                configs[i],
                setups[i],
                plan,
                noise,
                contention,
                repetitions,
                seed,
                wl_repr,
                engine,
            )
            for i in range(len(configs))
        ]

        hits = self._store_hits(fingerprints)
        results: "list[ConfigRunResult | None]" = [None] * len(configs)
        pending: list[int] = []
        duplicates: dict[int, list[int]] = {}
        leader_of: dict[str, int] = {}
        for index in range(len(configs)):
            hit = hits.get(fingerprints[index])
            if hit is not None:
                results[index] = hit
                continue
            leader = leader_of.get(fingerprints[index])
            if leader is not None:
                duplicates.setdefault(leader, []).append(index)
                continue
            leader_of[fingerprints[index]] = index
            pending.append(index)

        try:
            batch_capable = bool(
                ENGINE_REGISTRY.entry(engine).metadata.get("supports_batch")
            )
        except Exception:
            batch_capable = False
        task_wire = measure_task_to_wire(
            workload, plan, noise, contention, repetitions, seed, engine
        )
        journal_key, recovered = self._job_checkpoint(
            task_wire, fingerprints, results
        )
        with self._lock:
            job_id = f"J{next(self._ids)}"
            job = MeasureJob(
                job_id=job_id,
                workload=workload,
                parameters=parameters,
                configs=configs,
                keys=keys,
                fingerprints=fingerprints,
                task_wire=task_wire,
                results=results,
                cached=sum(1 for r in results if r is not None),
                recovered=recovered,
                journal_key=journal_key,
                batch_capable=batch_capable,
                duplicates=duplicates,
            )
            self._jobs[job_id] = job
            for group in batch_chunks(pending, setups, None, None):
                position = len(job.pending_groups)
                job.pending_groups.append(list(group))
                for index in group:
                    job.group_of[index] = position
            if job.remaining == 0:
                job.done.set()
        self._checkpoint_job(job)
        return job_id

    def _job_checkpoint(
        self,
        task_wire: Mapping,
        fingerprints: Sequence[str],
        results: Sequence,
    ) -> "tuple[str | None, int]":
        """Locate a prior incarnation's checkpoint for this content.

        Returns ``(journal key, recovered lanes)``: the count of store
        hits that the checkpoint records as *this job's own* pre-crash
        completions, as opposed to hits inherited from other campaigns.
        """
        if self.journal is None:
            return None, 0
        journal_key = measure_job_key(task_wire, fingerprints)
        checkpoint = self.journal.job_checkpoint(journal_key)
        if not checkpoint or checkpoint.get("done"):
            return journal_key, 0
        merged = {
            int(i) for i in checkpoint.get("merged", []) if str(i).isdigit()
        }
        recovered = sum(
            1
            for index, result in enumerate(results)
            if result is not None and index in merged
        )
        return journal_key, recovered

    def _checkpoint_job(self, job: MeasureJob) -> None:
        """Persist one job's merge progress (or its tombstone)."""
        if self.journal is None or job.journal_key is None:
            return
        if job.done.is_set() and job.error is None:
            self.journal.clear_job(job.journal_key)
            return
        with self._lock:
            merged = [
                index
                for index, result in enumerate(job.results)
                if result is not None
            ]
            state = {
                "job": job.job_id,
                "total": len(job.results),
                "merged": merged,
                "executed": job.executed,
                "cached": job.cached,
                "recovered": job.recovered,
            }
        self.journal.checkpoint_job(job.journal_key, state)

    def _store_hits(
        self, fingerprints: Sequence[str]
    ) -> dict[str, ConfigRunResult]:
        """Adoptable store results, keyed by fingerprint.

        One ``has_many`` round trip narrows the candidate set when the
        store supports it (a remote store pays one HTTP call instead of
        one per configuration); only reported hits are fetched.  A miss
        on fetch after a hit on ``has_many`` simply stays pending.
        """
        if self.store is None or not fingerprints:
            return {}
        unique = list(dict.fromkeys(fingerprints))
        has_many = getattr(self.store, "has_many", None)
        if callable(has_many):
            try:
                present = has_many(RUNS_NAMESPACE, unique)
                unique = [
                    fp for fp, hit in zip(unique, present) if hit
                ]
            except Exception:
                pass  # fall back to fetching every fingerprint
        hits: dict[str, ConfigRunResult] = {}
        for fingerprint in unique:
            result = self._store_get(fingerprint)
            if result is not None:
                result.cached = True
                hits[fingerprint] = result
        return hits

    def _store_get(self, fingerprint: str) -> "ConfigRunResult | None":
        if self.store is None:
            return None
        payload = self.store.get(RUNS_NAMESPACE, fingerprint)
        if payload is None:
            return None
        try:
            return config_run_result_from_dict(payload)
        except Exception:
            return None

    def _store_put(self, fingerprint: str, result: ConfigRunResult) -> None:
        if self.store is not None:
            self.store.put(
                RUNS_NAMESPACE, fingerprint, config_run_result_to_dict(result)
            )

    # -- the worker surface ------------------------------------------------

    def claim(
        self,
        worker: str = "",
        supports_batch: bool = True,
        lanes_per_sec: "float | None" = None,
    ) -> "dict | None":
        """Claim a lease sized to this worker; None when nothing to do.

        ``supports_batch`` and ``lanes_per_sec`` are the worker's
        capability claim; the broker's own per-worker rate estimate
        (from completed-lease wall clocks) takes precedence over the
        self-reported rate.  Returns the lease as a wire body: lease/job
        ids, design indices, configurations, per-configuration
        fingerprints, and the shared measure task.
        """
        with self._lock:
            self._reap_locked()
            state = self._worker_state_locked(
                worker, supports_batch, lanes_per_sec
            )
            if self._draining or state.quarantined:
                # A draining broker grants nothing new; a quarantined
                # worker gets no work until the operator restarts it.
                return None
            for job in self._jobs.values():
                if job.done.is_set():
                    continue
                for group in job.pending_groups:
                    if not group:
                        continue
                    size = self._lease_size_locked(job, state, len(group))
                    indices = tuple(group[:size])
                    del group[:size]
                    return self._grant_locked(job, indices, state)
            # Nothing pending anywhere: offer the tail of a straggler.
            split = self._split_straggler_locked(state)
            if split is not None:
                return split
        return None

    def _worker_state_locked(
        self,
        worker: str,
        supports_batch: bool,
        lanes_per_sec: "float | None",
    ) -> _WorkerState:
        name = str(worker) or "<anonymous>"
        state = self._workers.get(name)
        if state is None:
            state = self._workers[name] = _WorkerState(name=name)
        state.supports_batch = bool(supports_batch)
        if lanes_per_sec is not None and lanes_per_sec > 0:
            state.reported_rate = float(lanes_per_sec)
        return state

    def _lease_size_locked(
        self, job: MeasureJob, state: _WorkerState, available: int
    ) -> int:
        """Configurations to cut for this worker from one group pool."""
        if self.chunk_size is not None:
            return max(1, min(int(self.chunk_size), available))
        rate = state.best_rate
        if rate is not None and rate > 0:
            size = int(rate * self.target_lease_seconds)
            return max(1, min(size, available))
        if job.batch_capable and not state.supports_batch:
            # A scalar worker on a batch job pays per configuration;
            # probe with one lane until its rate is known.
            return 1
        # No rate yet: split the pool evenly across the expected fleet.
        return max(1, -(-available // self.workers_hint))

    def _grant_locked(
        self,
        job: MeasureJob,
        indices: tuple[int, ...],
        state: _WorkerState,
        splits: int = 0,
    ) -> dict:
        now = time.monotonic()
        lease = Lease(
            lease_id=f"L{next(self._ids)}",
            job_id=job.job_id,
            indices=indices,
            attempt=max(job.attempts.get(i, 0) for i in indices),
            worker=state.name,
            deadline=now + self.lease_ttl,
            claimed_at=now,
            splits=splits,
        )
        self._active[lease.lease_id] = lease
        self._log_lease_locked(lease, "active", None)
        return {
            "lease": lease.lease_id,
            "job": lease.job_id,
            "attempt": lease.attempt,
            "indices": list(lease.indices),
            "configs": configs_to_wire(
                job.configs[i] for i in lease.indices
            ),
            "fingerprints": [job.fingerprints[i] for i in lease.indices],
            "task": job.task_wire,
        }

    def _split_straggler_locked(self, state: _WorkerState) -> "dict | None":
        """Cede the tail half of the longest-held splittable lease."""
        now = time.monotonic()
        candidate: "Lease | None" = None
        for lease in self._active.values():
            if lease.splits >= self.max_splits:
                continue
            if lease.claimed_at is None:
                continue
            if now - lease.claimed_at <= self.straggler_grace:
                continue
            job = self._jobs.get(lease.job_id)
            if job is None or job.done.is_set():
                continue
            if len(lease.live_indices(job.results)) < 2:
                continue
            if (
                candidate is None
                or lease.claimed_at < candidate.claimed_at
            ):
                candidate = lease
        if candidate is None:
            return None
        job = self._jobs[candidate.job_id]
        live = candidate.live_indices(job.results)
        keep = (len(live) + 1) // 2
        ceded = tuple(live[keep:])
        candidate.ceded.update(ceded)
        candidate.splits += 1
        record = self._lease_log.get(candidate.lease_id)
        if record is not None:
            record["splits"] = candidate.splits
        return self._grant_locked(
            job, ceded, state, splits=candidate.splits
        )

    def complete(self, lease_id: str, results: Sequence[Mapping]) -> None:
        """Accept a worker's results for a lease.

        Results are ``{"index": int, "result": <ConfigRunResult dict>}``
        entries.  A completion for a lease that was already reaped (the
        worker outlived its TTL) is silently dropped — the re-pooled
        work recomputes the same bit-identical values, so duplicated
        work is the designed cost of crash recovery, never corruption.
        The same first-writer-wins rule covers straggler splits: ceded
        indices stay valid on the original lease, and whichever copy
        reports first fills the slot.
        """
        decoded: list[tuple[int, ConfigRunResult]] = []
        to_publish: list[tuple[str, ConfigRunResult]] = []
        with self._lock:
            lease = self._active.pop(str(lease_id), None)
            job = self._jobs.get(lease.job_id) if lease else None
            if job is None:
                return
            for entry in results:
                if not isinstance(entry, Mapping):
                    raise ServiceError(
                        f"malformed lease result for {lease_id}: "
                        "expected {'index': ..., 'result': ...} entries"
                    )
                index = int(entry["index"])
                if index not in lease.indices:
                    raise ServiceError(
                        f"lease {lease_id} reported result for design "
                        f"index {index}, which it does not hold"
                    )
                try:
                    result = config_run_result_from_dict(entry["result"])
                except Exception as exc:
                    raise ServiceError(
                        f"lease {lease_id} result for index {index} "
                        f"does not decode: {exc}"
                    ) from exc
                decoded.append((index, result))
            for index, result in decoded:
                if job.results[index] is None:
                    job.results[index] = result
                    job.executed += 1
                    to_publish.append((job.fingerprints[index], result))
                # Broadcast to within-job fingerprint duplicates: same
                # inputs, same bits, leased once.
                for twin in job.duplicates.get(index, ()):
                    if job.results[twin] is None:
                        job.results[twin] = job.results[index]
                        job.cached += 1
            if job.remaining == 0 and job.error is None:
                job.done.set()
            self._record_completion_locked(lease)
        for fingerprint, result in to_publish:
            self._store_put(fingerprint, result)
        self._checkpoint_job(job)

    def _record_completion_locked(self, lease: Lease) -> None:
        elapsed = (
            time.monotonic() - lease.claimed_at
            if lease.claimed_at is not None
            else None
        )
        self._log_lease_locked(lease, "completed", elapsed)
        state = self._workers.get(lease.worker or "")
        if state is None:
            return
        state.consecutive_failures = 0
        if elapsed is None:
            return
        lanes = len(lease.indices)
        sample = lanes / max(elapsed, 1e-9)
        state.rate = (
            sample
            if state.rate is None
            else 0.5 * state.rate + 0.5 * sample
        )
        state.leases_completed += 1
        state.lanes_completed += lanes

    def fail(self, lease_id: str, reason: str = "") -> None:
        """Re-pool a lease a worker reported as failed.

        Explicit failures also count against the reporting worker:
        ``quarantine_after`` consecutive failures (with no completion in
        between) quarantine it — its claims return no work — so one
        wedged or mis-deployed worker cannot burn a job's whole
        per-configuration attempt budget.  (TTL reaps do not count: a
        reaped worker is presumed dead, and a fresh claim under its name
        is the restarted process, not the wedged one.)
        """
        with self._lock:
            lease = self._active.pop(str(lease_id), None)
            if lease is not None:
                elapsed = (
                    time.monotonic() - lease.claimed_at
                    if lease.claimed_at is not None
                    else None
                )
                self._log_lease_locked(lease, "failed", elapsed)
                state = self._workers.get(lease.worker or "")
                if state is not None:
                    state.failures += 1
                    state.consecutive_failures += 1
                    if state.consecutive_failures >= self.quarantine_after:
                        state.quarantined = True
                self._requeue_locked(lease, reason or "reported failed")

    # -- fault handling ----------------------------------------------------

    def _reap_locked(self) -> None:
        now = time.monotonic()
        expired = [
            lease
            for lease in self._active.values()
            if lease.deadline is not None and lease.deadline < now
        ]
        for lease in expired:
            del self._active[lease.lease_id]
            self._log_lease_locked(
                lease,
                "reaped",
                now - lease.claimed_at
                if lease.claimed_at is not None
                else None,
            )
            self._requeue_locked(
                lease,
                f"lease TTL ({self.lease_ttl:g}s) expired — worker "
                f"{lease.worker or '<unknown>'} presumed dead",
            )

    def _requeue_locked(self, lease: Lease, reason: str) -> None:
        """Return a dead lease's unfinished, un-ceded work to its pools."""
        job = self._jobs.get(lease.job_id)
        if job is None or job.done.is_set():
            return
        for index in lease.live_indices(job.results):
            attempts = job.attempts.get(index, 0) + 1
            job.attempts[index] = attempts
            if attempts >= self.max_attempts:
                job.error = LeaseTimeout(
                    lease.lease_id,
                    job_id=job.job_id,
                    attempts=attempts,
                    fingerprints=[
                        job.fingerprints[i]
                        for i in lease.live_indices(job.results)
                    ],
                    detail=reason,
                )
                job.done.set()
                return
            group = job.pending_groups[job.group_of[index]]
            bisect.insort(group, index)

    # -- telemetry ---------------------------------------------------------

    def _log_lease_locked(
        self, lease: Lease, status: str, seconds: "float | None"
    ) -> None:
        record = self._lease_log.get(lease.lease_id)
        if record is None:
            # Field insertion order is the wire order (`repro status`
            # prints it as-is, so it must be deterministic).
            record = {
                "lease": lease.lease_id,
                "job": lease.job_id,
                "worker": lease.worker,
                "configurations": len(lease.indices),
                "attempt": lease.attempt,
                "status": status,
                "seconds": None,
                "splits": lease.splits,
            }
            self._lease_log[lease.lease_id] = record
            while len(self._lease_log) > _TELEMETRY_LOG_LIMIT:
                self._lease_log.popitem(last=False)
        record["status"] = status
        record["splits"] = lease.splits
        if seconds is not None:
            record["seconds"] = round(seconds, 3)

    def telemetry(self) -> dict:
        """Per-lease timings/attempts and per-worker rate estimates.

        Leases sort by numeric id, workers by name; every record keeps a
        fixed field order, so rendered output is deterministic.
        """
        with self._lock:
            self._reap_locked()
            leases = sorted(
                (dict(record) for record in self._lease_log.values()),
                key=lambda r: int(str(r["lease"]).lstrip("L") or 0),
            )
            workers = [
                {
                    "worker": state.name,
                    "supports_batch": state.supports_batch,
                    "lanes_per_sec": (
                        round(state.best_rate, 3)
                        if state.best_rate is not None
                        else None
                    ),
                    "leases_completed": state.leases_completed,
                    "lanes_completed": state.lanes_completed,
                    # New fields go at the END: `repro status` renders
                    # records in insertion order.
                    "failures": state.failures,
                    "quarantined": state.quarantined,
                }
                for _, state in sorted(self._workers.items())
            ]
            return {"leases": leases, "workers": workers}

    # -- the submitter surface ---------------------------------------------

    def wait(
        self, job_id: str, timeout: "float | None" = None, poll: float = 0.05
    ) -> tuple[Measurements, dict[ConfigKey, ProfileResult]]:
        """Block until *job_id* finishes; return its merged measurements.

        Raises the job's :class:`~repro.errors.LeaseTimeout` if a
        configuration exhausted its attempts, and
        :class:`~repro.errors.ServiceError` on an unknown job or a wait
        timeout.
        """
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(f"unknown measure job '{job_id}'")
        start = time.monotonic()
        while not job.done.wait(poll):
            with self._lock:
                self._reap_locked()
            if timeout is not None and time.monotonic() - start > timeout:
                raise ServiceError(
                    f"measure job '{job_id}' did not finish within "
                    f"{timeout:g}s ({job.remaining} of "
                    f"{len(job.results)} configurations outstanding — "
                    "are any workers connected?)"
                )
        if job.error is not None:
            raise job.error
        return merge_results(job.parameters, job.results)

    def job_stats(self, job_id: str) -> RunStats:
        """Executed/cached provenance of a finished (or running) job."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise ServiceError(f"unknown measure job '{job_id}'")
            return RunStats(executed=job.executed, cached=job.cached)

    def job_recovery(self, job_id: str) -> int:
        """Lanes of *job_id* recovered from a prior incarnation's
        checkpoint (a subset of its ``cached`` count)."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise ServiceError(f"unknown measure job '{job_id}'")
            return job.recovered

    def queue_depth(self) -> int:
        """Pending (unleased) configurations, after reaping expired
        leases — the fleet's backlog in units of work, not leases
        (leases are now cut per claim)."""
        with self._lock:
            self._reap_locked()
            return sum(
                job.pending
                for job in self._jobs.values()
                if not job.done.is_set()
            )

    # -- graceful shutdown -------------------------------------------------

    def drain(
        self, timeout: "float | None" = None, poll: float = 0.05
    ) -> bool:
        """Stop granting leases; wait for in-flight leases to land.

        Returns True when the broker drained clean (no active leases
        left), False when *timeout* elapsed with leases still out.
        Active leases may still complete normally while draining — only
        new claims are refused — so a SIGTERM'd server loses no work
        already in workers' hands.
        """
        with self._lock:
            self._draining = True
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        while True:
            with self._lock:
                self._reap_locked()
                if not self._active:
                    return True
            if deadline is not None and time.monotonic() > deadline:
                with self._lock:
                    return not self._active
            time.sleep(poll)


@dataclass
class BrokerScheduler:
    """A :class:`~repro.core.stages.MeasureScheduler` over a broker.

    Plugging one of these into a campaign makes ``run_measure_stage``
    lease the design out to whatever workers are attached to the broker
    instead of executing locally — with identical output, so local and
    distributed campaigns share stage-artifact fingerprints.
    """

    broker: Broker
    timeout: "float | None" = None

    def __post_init__(self) -> None:
        self.last_stats = RunStats()
        self.last_job_id: "str | None" = None

    def run_measure(
        self,
        workload: Workload,
        design: Sequence[Mapping[str, float]],
        plan: InstrumentationPlan,
        *,
        noise: NoiseModel,
        contention: ContentionModel,
        repetitions: int,
        seed: int,
        engine: str,
    ) -> tuple[Measurements, dict[ConfigKey, ProfileResult]]:
        job_id = self.broker.submit_measure(
            workload,
            design,
            plan,
            noise=noise,
            contention=contention,
            repetitions=repetitions,
            seed=seed,
            engine=engine,
        )
        self.last_job_id = job_id
        try:
            return self.broker.wait(job_id, timeout=self.timeout)
        finally:
            self.last_stats = self.broker.job_stats(job_id)
