"""The measure-stage broker: leases out chunks, merges in design order.

The broker owns one side of the campaign service's central invariant:

    *for any worker count and any failure schedule, a distributed
    measure stage is bit-identical to the single-process runners.*

It holds that invariant the same way the process-pool runners do —
workers only ever compute :class:`~repro.measure.experiment.ConfigRunResult`
values whose noise streams are derived purely from
``(seed, function, configuration key, repetition)``, and the broker
merges them **by design index**, never by completion order.  Which
worker ran a chunk, how chunks were sized, and how many times a lease
was re-queued after a crash are all invisible in the output.

Fault tolerance is lease-based: a claim carries a TTL; leases that are
neither completed nor failed before the deadline are reaped and
re-queued (the crashed-worker path), and explicit failures re-queue
immediately.  After ``max_attempts`` attempts a lease poisons its job
with a :class:`~repro.errors.LeaseTimeout` naming the lease, the job,
and the affected fingerprints.

Fleet-wide dedupe: given a store, the broker checks the ``runs``
namespace (keyed by
:func:`~repro.measure.parallel.configuration_fingerprint`) before
leasing, and publishes completed results back — so two campaigns
sharing configurations execute each profiled run once between them.

Chunking reuses :func:`~repro.measure.batched.batch_chunks`, so every
lease's configurations share ``exec_config`` and ``entry`` and a
batch-capable worker can execute the whole lease as one tensor pass.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..errors import LeaseTimeout, ServiceError
from ..measure.batched import batch_chunks
from ..measure.experiment import (
    ConfigKey,
    ConfigRunResult,
    Measurements,
    Workload,
    config_key,
    merge_results,
)
from ..measure.instrumentation import InstrumentationPlan
from ..measure.io import (
    config_run_result_from_dict,
    config_run_result_to_dict,
    program_hash,
)
from ..measure.parallel import (
    RunStats,
    configuration_fingerprint,
    workload_repr,
)
from ..mpisim.contention import ContentionModel
from ..measure.noise import NoiseModel
from ..measure.profiler import ProfileResult
from .protocol import configs_to_wire, measure_task_to_wire
from .remote_store import RUNS_NAMESPACE

#: Default seconds a claimed lease may stay unreported before reaping.
DEFAULT_LEASE_TTL = 30.0
#: Default attempts per lease before the job fails with LeaseTimeout.
DEFAULT_MAX_ATTEMPTS = 3


@dataclass
class Lease:
    """One claimable chunk of a measure job."""

    lease_id: str
    job_id: str
    indices: tuple[int, ...]
    attempt: int = 0
    worker: "str | None" = None
    #: ``time.monotonic`` deadline while claimed, else None.
    deadline: "float | None" = None


@dataclass
class MeasureJob:
    """One submitted measure stage, tracked to completion."""

    job_id: str
    workload: Workload
    parameters: tuple[str, ...]
    configs: list[dict[str, float]]
    keys: list[ConfigKey]
    fingerprints: list[str]
    task_wire: dict
    results: "list[ConfigRunResult | None]"
    cached: int = 0
    executed: int = 0
    error: "Exception | None" = None
    done: threading.Event = field(default_factory=threading.Event)

    @property
    def remaining(self) -> int:
        return sum(1 for r in self.results if r is None)


class Broker:
    """Splits measure stages into leases and merges worker results.

    Thread-safe: the campaign server drives it from HTTP handler threads
    and the in-process tests from plain worker threads, through the same
    ``claim`` / ``complete`` / ``fail`` surface the HTTP transport wraps.
    """

    def __init__(
        self,
        store=None,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        chunk_size: "int | None" = None,
        workers_hint: int = 4,
    ) -> None:
        if lease_ttl <= 0:
            raise ValueError(f"lease_ttl must be > 0, got {lease_ttl}")
        if max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {max_attempts}"
            )
        self.store = store
        self.lease_ttl = float(lease_ttl)
        self.max_attempts = int(max_attempts)
        self.chunk_size = chunk_size
        self.workers_hint = max(1, int(workers_hint))
        self._lock = threading.Lock()
        self._jobs: dict[str, MeasureJob] = {}
        self._queue: list[Lease] = []
        self._active: dict[str, Lease] = {}
        self._ids = itertools.count(1)

    # -- submission --------------------------------------------------------

    def submit_measure(
        self,
        workload: Workload,
        design: Sequence[Mapping[str, float]],
        plan: InstrumentationPlan,
        *,
        noise: NoiseModel,
        contention: ContentionModel,
        repetitions: int,
        seed: int,
        engine: str,
    ) -> str:
        """Queue one measure stage; returns the job id.

        The design is fingerprinted configuration by configuration;
        store hits are adopted immediately (``cached``), misses become
        leases in canonical design order.
        """
        configs = [dict(c) for c in design]
        parameters = tuple(workload.parameters)
        program = workload.program()
        digest = program_hash(program)
        wl_repr = workload_repr(workload)
        keys = [config_key(parameters, c) for c in configs]
        setups = [workload.setup(c) for c in configs]
        fingerprints = [
            configuration_fingerprint(
                digest,
                configs[i],
                setups[i],
                plan,
                noise,
                contention,
                repetitions,
                seed,
                wl_repr,
                engine,
            )
            for i in range(len(configs))
        ]

        results: "list[ConfigRunResult | None]" = [None] * len(configs)
        pending: list[int] = []
        for index in range(len(configs)):
            hit = self._store_get(fingerprints[index])
            if hit is not None:
                hit.cached = True
                results[index] = hit
            else:
                pending.append(index)

        task_wire = measure_task_to_wire(
            workload, plan, noise, contention, repetitions, seed, engine
        )
        with self._lock:
            job_id = f"J{next(self._ids)}"
            job = MeasureJob(
                job_id=job_id,
                workload=workload,
                parameters=parameters,
                configs=configs,
                keys=keys,
                fingerprints=fingerprints,
                task_wire=task_wire,
                results=results,
                cached=len(configs) - len(pending),
            )
            self._jobs[job_id] = job
            for chunk in batch_chunks(
                pending, setups, self.chunk_size, self.workers_hint
            ):
                self._queue.append(
                    Lease(
                        lease_id=f"L{next(self._ids)}",
                        job_id=job_id,
                        indices=tuple(chunk),
                    )
                )
            if job.remaining == 0:
                job.done.set()
        return job_id

    def _store_get(self, fingerprint: str) -> "ConfigRunResult | None":
        if self.store is None:
            return None
        payload = self.store.get(RUNS_NAMESPACE, fingerprint)
        if payload is None:
            return None
        try:
            return config_run_result_from_dict(payload)
        except Exception:
            return None

    def _store_put(self, fingerprint: str, result: ConfigRunResult) -> None:
        if self.store is not None:
            self.store.put(
                RUNS_NAMESPACE, fingerprint, config_run_result_to_dict(result)
            )

    # -- the worker surface ------------------------------------------------

    def claim(self, worker: str = "") -> "dict | None":
        """Claim the next lease; None when the queue is empty.

        Returns the lease as a wire body: lease/job ids, design indices,
        configurations, per-configuration fingerprints, and the shared
        measure task.
        """
        with self._lock:
            self._reap_locked()
            while self._queue:
                lease = self._queue.pop(0)
                job = self._jobs.get(lease.job_id)
                if job is None or job.done.is_set():
                    continue
                lease.worker = str(worker) or None
                lease.deadline = time.monotonic() + self.lease_ttl
                self._active[lease.lease_id] = lease
                return {
                    "lease": lease.lease_id,
                    "job": lease.job_id,
                    "attempt": lease.attempt,
                    "indices": list(lease.indices),
                    "configs": configs_to_wire(
                        job.configs[i] for i in lease.indices
                    ),
                    "fingerprints": [
                        job.fingerprints[i] for i in lease.indices
                    ],
                    "task": job.task_wire,
                }
        return None

    def complete(self, lease_id: str, results: Sequence[Mapping]) -> None:
        """Accept a worker's results for a lease.

        Results are ``{"index": int, "result": <ConfigRunResult dict>}``
        entries.  A completion for a lease that was already reaped (the
        worker outlived its TTL) is silently dropped — the re-queued
        lease recomputes the same bit-identical values, so duplicated
        work is the designed cost of crash recovery, never corruption.
        """
        decoded: list[tuple[int, ConfigRunResult]] = []
        to_publish: list[tuple[str, ConfigRunResult]] = []
        with self._lock:
            lease = self._active.pop(str(lease_id), None)
            job = self._jobs.get(lease.job_id) if lease else None
            if job is None:
                return
            for entry in results:
                if not isinstance(entry, Mapping):
                    raise ServiceError(
                        f"malformed lease result for {lease_id}: "
                        "expected {'index': ..., 'result': ...} entries"
                    )
                index = int(entry["index"])
                if index not in lease.indices:
                    raise ServiceError(
                        f"lease {lease_id} reported result for design "
                        f"index {index}, which it does not hold"
                    )
                try:
                    result = config_run_result_from_dict(entry["result"])
                except Exception as exc:
                    raise ServiceError(
                        f"lease {lease_id} result for index {index} "
                        f"does not decode: {exc}"
                    ) from exc
                decoded.append((index, result))
            for index, result in decoded:
                if job.results[index] is None:
                    job.results[index] = result
                    job.executed += 1
                    to_publish.append((job.fingerprints[index], result))
            if job.remaining == 0 and job.error is None:
                job.done.set()
        for fingerprint, result in to_publish:
            self._store_put(fingerprint, result)

    def fail(self, lease_id: str, reason: str = "") -> None:
        """Re-queue a lease a worker reported as failed."""
        with self._lock:
            lease = self._active.pop(str(lease_id), None)
            if lease is not None:
                self._requeue_locked(lease, reason or "reported failed")

    # -- fault handling ----------------------------------------------------

    def _reap_locked(self) -> None:
        now = time.monotonic()
        expired = [
            lease
            for lease in self._active.values()
            if lease.deadline is not None and lease.deadline < now
        ]
        for lease in expired:
            del self._active[lease.lease_id]
            self._requeue_locked(
                lease,
                f"lease TTL ({self.lease_ttl:g}s) expired — worker "
                f"{lease.worker or '<unknown>'} presumed dead",
            )

    def _requeue_locked(self, lease: Lease, reason: str) -> None:
        job = self._jobs.get(lease.job_id)
        if job is None or job.done.is_set():
            return
        lease.attempt += 1
        lease.worker = None
        lease.deadline = None
        if lease.attempt >= self.max_attempts:
            job.error = LeaseTimeout(
                lease.lease_id,
                job_id=job.job_id,
                attempts=lease.attempt,
                fingerprints=[job.fingerprints[i] for i in lease.indices],
                detail=reason,
            )
            job.done.set()
        else:
            self._queue.append(lease)

    # -- the submitter surface ---------------------------------------------

    def wait(
        self, job_id: str, timeout: "float | None" = None, poll: float = 0.05
    ) -> tuple[Measurements, dict[ConfigKey, ProfileResult]]:
        """Block until *job_id* finishes; return its merged measurements.

        Raises the job's :class:`~repro.errors.LeaseTimeout` if a lease
        exhausted its attempts, and :class:`~repro.errors.ServiceError`
        on an unknown job or a wait timeout.
        """
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(f"unknown measure job '{job_id}'")
        start = time.monotonic()
        while not job.done.wait(poll):
            with self._lock:
                self._reap_locked()
            if timeout is not None and time.monotonic() - start > timeout:
                raise ServiceError(
                    f"measure job '{job_id}' did not finish within "
                    f"{timeout:g}s ({job.remaining} of "
                    f"{len(job.results)} configurations outstanding — "
                    "are any workers connected?)"
                )
        if job.error is not None:
            raise job.error
        return merge_results(job.parameters, job.results)

    def job_stats(self, job_id: str) -> RunStats:
        """Executed/cached provenance of a finished (or running) job."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise ServiceError(f"unknown measure job '{job_id}'")
            return RunStats(executed=job.executed, cached=job.cached)

    def queue_depth(self) -> int:
        """Unclaimed leases (after reaping expired ones)."""
        with self._lock:
            self._reap_locked()
            return len(self._queue)


@dataclass
class BrokerScheduler:
    """A :class:`~repro.core.stages.MeasureScheduler` over a broker.

    Plugging one of these into a campaign makes ``run_measure_stage``
    lease the design out to whatever workers are attached to the broker
    instead of executing locally — with identical output, so local and
    distributed campaigns share stage-artifact fingerprints.
    """

    broker: Broker
    timeout: "float | None" = None

    def __post_init__(self) -> None:
        self.last_stats = RunStats()
        self.last_job_id: "str | None" = None

    def run_measure(
        self,
        workload: Workload,
        design: Sequence[Mapping[str, float]],
        plan: InstrumentationPlan,
        *,
        noise: NoiseModel,
        contention: ContentionModel,
        repetitions: int,
        seed: int,
        engine: str,
    ) -> tuple[Measurements, dict[ConfigKey, ProfileResult]]:
        job_id = self.broker.submit_measure(
            workload,
            design,
            plan,
            noise=noise,
            contention=contention,
            repetitions=repetitions,
            seed=seed,
            engine=engine,
        )
        self.last_job_id = job_id
        try:
            return self.broker.wait(job_id, timeout=self.timeout)
        finally:
            self.last_stats = self.broker.job_stats(job_id)
