"""The shared, remote artifact cache behind ``get``/``put``/``has``.

Generalizes the two existing content-addressed stores — the per-stage
:class:`~repro.core.artifacts.ArtifactStore` (campaign workspaces) and
the per-configuration :class:`~repro.measure.io.RunCache` — into one
namespaced key/value store with three faces:

* :class:`LocalStore` — the on-disk backend (one JSON file per entry,
  atomic temp-file + rename writes; corrupt entries are counted, logged
  once, and quarantined to ``<store>/corrupt/`` instead of being re-read
  as misses forever), the state behind a campaign server;
* :class:`RemoteStore` — the same ``get``/``put``/``has`` surface over
  the campaign server's HTTP endpoints, for clients and workers;
* :class:`SharedWorkspace` / :class:`RemoteRunCache` — adapters giving a
  store the exact interfaces :class:`~repro.core.stages.Campaign` and
  the experiment runners already consume, so a campaign pointed at a
  shared store resumes stages other clients computed, with zero code
  changes above this module.

Atomicity contract (the concurrent-writer guarantee): writers land
entries with ``os.replace`` after writing a private temp file, so two
processes racing the same fingerprint can never produce a torn or
interleaved entry — the worst case is the same content being computed
twice and the last writer winning with identical bytes.
"""

from __future__ import annotations

import itertools
import json
import logging
import os
import pathlib
import re
import tempfile
import threading
import urllib.error
import urllib.request
from typing import Mapping

from ..errors import ServiceError, TransientServiceError
from ..measure.experiment import ConfigRunResult
from ..measure.io import (
    config_run_result_from_dict,
    config_run_result_to_dict,
)
from .protocol import envelope, open_envelope
from .retry import RetryPolicy, retry_call

logger = logging.getLogger(__name__)

#: Store namespace holding per-stage campaign artifacts.
STAGE_NAMESPACE = "stage"
#: Store namespace holding per-configuration run results.
RUNS_NAMESPACE = "runs"

_NAME_RE = re.compile(r"[A-Za-z0-9._-]+")

#: Version tag written into every store entry (mirrors the artifact
#: store's envelope validation).
STORE_VERSION = 1


def _check_name(kind: str, name: str) -> str:
    if not isinstance(name, str) or not _NAME_RE.fullmatch(name):
        raise ServiceError(
            f"invalid store {kind} {name!r}: expected "
            "[A-Za-z0-9._-]+ (fingerprints and stage names only)"
        )
    return name


class LocalStore:
    """Namespaced, content-addressed JSON store on the local disk.

    Corrupt entries (torn by a crash older than the atomic-write path,
    bit-rotted, or hand-edited) are **quarantined**: the first read that
    fails to decode or validate moves the file to ``<store>/corrupt/``,
    logs the key once, and counts it — so the entry reads as a plain
    miss from then on and is recomputed instead of being re-read (and
    re-failed) forever.  :meth:`corrupt_stats` surfaces the counters
    (the campaign server exposes them at ``/api/v1/telemetry``).
    """

    #: Directory name (under the store root) holding quarantined files.
    CORRUPT_DIR = "corrupt"

    def __init__(self, root: "str | pathlib.Path") -> None:
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._quarantine_ids = itertools.count(1)
        #: ``namespace/key`` names quarantined so far, in event order.
        self._corrupt_keys: list[str] = []

    def _path(self, namespace: str, key: str) -> pathlib.Path:
        return (
            self.root
            / _check_name("namespace", namespace)
            / f"{_check_name('key', key)}.json"
        )

    def has(self, namespace: str, key: str) -> bool:
        return self._path(namespace, key).exists()

    def has_many(self, namespace: str, keys) -> list[bool]:
        """Presence of each key, one answer per key, order preserved."""
        return [self.has(namespace, key) for key in keys]

    def get(self, namespace: str, key: str) -> object | None:
        """The stored payload; None on a miss or a quarantined entry."""
        path = self._path(namespace, key)
        try:
            entry = json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            self._quarantine(namespace, key, path)
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("version") != STORE_VERSION
            or entry.get("key") != key
            or "payload" not in entry
        ):
            self._quarantine(namespace, key, path)
            return None
        return entry["payload"]

    def _quarantine(
        self, namespace: str, key: str, path: pathlib.Path
    ) -> None:
        """Move a corrupt entry aside; count and log it exactly once."""
        folder = self.root / self.CORRUPT_DIR
        folder.mkdir(parents=True, exist_ok=True)
        with self._lock:
            destination = (
                folder
                / f"{namespace}-{key}-{next(self._quarantine_ids)}.quarantined"
            )
            try:
                os.replace(path, destination)
            except OSError:
                # Lost a race with a concurrent quarantine (or the file
                # vanished); whoever moved it already counted it.
                return
            self._corrupt_keys.append(f"{namespace}/{key}")
        logger.warning(
            "quarantined corrupt store entry %s/%s -> %s "
            "(it will be recomputed, not re-read)",
            namespace,
            key,
            destination,
        )

    def corrupt_stats(self) -> dict:
        """Quarantine counters, in deterministic field order."""
        with self._lock:
            return {
                "corrupt_entries": len(self._corrupt_keys),
                "quarantined_keys": list(self._corrupt_keys),
            }

    def put(self, namespace: str, key: str, payload: object) -> None:
        """Store *payload* atomically under (*namespace*, *key*)."""
        path = self._path(namespace, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {"version": STORE_VERSION, "key": key, "payload": payload}
        try:
            text = json.dumps(entry, indent=1)
        except (TypeError, ValueError) as exc:
            raise ServiceError(
                f"store payload for '{namespace}/{key}' is not "
                f"JSON-serializable: {exc}"
            ) from exc
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def keys(self, namespace: str) -> list[str]:
        """All keys stored under *namespace* (for inspection/tests)."""
        folder = self.root / _check_name("namespace", namespace)
        return sorted(p.stem for p in folder.glob("*.json"))

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))


# ----------------------------------------------------------------------
# HTTP plumbing (shared by every service client)


def http_json(
    method: str,
    url: str,
    payload: "object | None" = None,
    timeout: float = 30.0,
) -> tuple[int, object]:
    """One JSON request/response cycle with typed failure.

    Bare socket and decode errors become
    :class:`~repro.errors.TransientServiceError` naming the endpoint —
    the CLI boundary never leaks a raw ``URLError``, and the shared
    retry policy knows these are worth retrying (a dropped connection
    and a garbled response body are the same network-level event).
    Responses with HTTP error codes are returned (status, body) rather
    than raised, so callers can map 404 to a cache miss.
    """
    data = None
    headers = {"Accept": "application/json"}
    if payload is not None:
        data = json.dumps(payload).encode()
        headers["Content-Type"] = "application/json"
    request = urllib.request.Request(
        url, data=data, headers=headers, method=method
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            body = response.read()
            status = response.status
    except urllib.error.HTTPError as exc:
        body = exc.read()
        status = exc.code
    except (urllib.error.URLError, OSError) as exc:
        reason = getattr(exc, "reason", exc)
        raise TransientServiceError(
            f"cannot reach the campaign service at {url}: {reason} — "
            "is `repro serve` running and the URL correct?"
        ) from exc
    if not body:
        return status, None
    try:
        return status, json.loads(body)
    except ValueError as exc:
        raise TransientServiceError(
            f"non-JSON (possibly truncated or garbled) response from "
            f"{url} (HTTP {status}): {body[:120]!r}"
        ) from exc


def raise_for_error(status: int, body: object, url: str) -> None:
    """Map an HTTP error response to the typed service hierarchy.

    5xx responses raise :class:`~repro.errors.TransientServiceError`
    (the server may simply be restarting); 4xx responses are permanent.
    """
    if status < 400:
        return
    detail = ""
    if isinstance(body, Mapping):
        try:
            error_body = open_envelope(body, "error")
        except ServiceError:
            error_body = None
        if isinstance(error_body, Mapping):
            detail = str(error_body.get("error", ""))
    message = (
        f"campaign service at {url} rejected the request "
        f"(HTTP {status}){': ' + detail if detail else ''}"
    )
    if status >= 500:
        raise TransientServiceError(message)
    raise ServiceError(message)


class RemoteStore:
    """``get``/``put``/``has`` against a campaign server's store endpoints.

    The drop-in remote twin of :class:`LocalStore`: same namespaces, same
    payloads, same miss semantics — an entry another client put a moment
    ago is immediately visible here.

    Every call runs under the shared service retry policy, keyed on the
    content-addressed store key it touches: store reads are naturally
    idempotent, and a retried ``put`` re-lands byte-identical content
    (the store is content-addressed), so transient network failures
    cost a deterministic backoff, never correctness.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        retry: "RetryPolicy | None" = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retry = retry if retry is not None else RetryPolicy.from_env()

    def _retry(self, fn, key: str):
        return retry_call(fn, key=key, policy=self.retry)

    def _url(self, namespace: str, key: str) -> str:
        return (
            f"{self.base_url}/api/v1/store/"
            f"{_check_name('namespace', namespace)}/"
            f"{_check_name('key', key)}"
        )

    def has(self, namespace: str, key: str) -> bool:
        url = self._url(namespace, key)
        status, _ = self._retry(
            lambda: http_json("HEAD", url, timeout=self.timeout),
            key=f"store.has:{namespace}/{key}",
        )
        return status == 200

    def has_many(self, namespace: str, keys) -> list[bool]:
        """Presence of each key in **one** round trip (vs one HEAD each).

        This is the store-side twin of lane dedup: a broker (or runner)
        checking hundreds of fingerprints before a submission pays one
        request, not hundreds.
        """
        keys = [_check_name("key", key) for key in keys]
        if not keys:
            return []
        url = (
            f"{self.base_url}/api/v1/store/"
            f"{_check_name('namespace', namespace)}/has-many"
        )

        def call():
            status, body = http_json(
                "POST",
                url,
                envelope("store.has_many", {"keys": keys}),
                timeout=self.timeout,
            )
            raise_for_error(status, body, url)
            return status, body

        status, body = self._retry(
            call, key=f"store.has_many:{namespace}/{keys[0]}+{len(keys)}"
        )
        entry = open_envelope(body, "store.presence")
        present = entry.get("present") if isinstance(entry, Mapping) else None
        if not isinstance(present, list) or len(present) != len(keys):
            raise ServiceError(f"malformed store presence reply from {url}")
        return [bool(flag) for flag in present]

    def get(self, namespace: str, key: str) -> object | None:
        url = self._url(namespace, key)

        def call():
            status, body = http_json("GET", url, timeout=self.timeout)
            if status == 404:
                return None
            raise_for_error(status, body, url)
            entry = open_envelope(body, "store.entry")
            if not isinstance(entry, Mapping) or "payload" not in entry:
                raise ServiceError(f"malformed store entry from {url}")
            return entry["payload"]

        return self._retry(call, key=f"store.get:{namespace}/{key}")

    def put(self, namespace: str, key: str, payload: object) -> None:
        url = self._url(namespace, key)
        body_wire = envelope("store.put", {"payload": payload})

        def call():
            status, body = http_json(
                "PUT", url, body_wire, timeout=self.timeout
            )
            raise_for_error(status, body, url)

        self._retry(call, key=f"store.put:{namespace}/{key}")


# ----------------------------------------------------------------------
# adapters onto the existing cache interfaces


class SharedWorkspace:
    """A campaign workspace backed by a shared (local or remote) store.

    Implements the :class:`~repro.core.artifacts.ArtifactStore` surface
    (``get(stage, fingerprint)`` / ``put(stage, fingerprint, payload)``)
    over the store's ``stage`` namespace, with the same envelope
    validation — so concurrent campaigns from many clients resume each
    other's stages with zero re-execution, and a local workspace file is
    byte-compatible with what the server stores.
    """

    def __init__(self, store: "LocalStore | RemoteStore") -> None:
        self.store = store
        #: Display name (a path for local stores, a URL for remote ones).
        self.root = getattr(store, "base_url", None) or getattr(
            store, "root", ""
        )

    def _key(self, stage: str, fingerprint: str) -> str:
        return f"{stage}-{fingerprint}"

    def get(self, stage: str, fingerprint: str) -> object | None:
        entry = self.store.get(
            STAGE_NAMESPACE, self._key(stage, fingerprint)
        )
        if (
            not isinstance(entry, Mapping)
            or entry.get("stage") != stage
            or entry.get("fingerprint") != fingerprint
            or "payload" not in entry
        ):
            return None
        return entry["payload"]

    def put(self, stage: str, fingerprint: str, payload: object) -> None:
        self.store.put(
            STAGE_NAMESPACE,
            self._key(stage, fingerprint),
            {"stage": stage, "fingerprint": fingerprint, "payload": payload},
        )

    def __contains__(self, key: tuple[str, str]) -> bool:
        stage, fingerprint = key
        return self.store.has(STAGE_NAMESPACE, self._key(stage, fingerprint))


class RemoteRunCache:
    """A :class:`~repro.measure.io.RunCache`-compatible view of a store.

    Lets any experiment runner (or the broker) key per-configuration run
    results by :func:`~repro.measure.parallel.configuration_fingerprint`
    against the fleet-shared store instead of a local directory.
    """

    def __init__(self, store: "LocalStore | RemoteStore") -> None:
        self.store = store

    def __contains__(self, fingerprint: str) -> bool:
        return self.store.has(RUNS_NAMESPACE, fingerprint)

    def has_many(self, fingerprints) -> list[bool]:
        """Batched presence check (one round trip on remote stores)."""
        return self.store.has_many(RUNS_NAMESPACE, list(fingerprints))

    def get(self, fingerprint: str) -> ConfigRunResult | None:
        payload = self.store.get(RUNS_NAMESPACE, fingerprint)
        if payload is None:
            return None
        try:
            result = config_run_result_from_dict(payload)
        except Exception:
            return None
        result.cached = True
        return result

    def put(self, fingerprint: str, result: ConfigRunResult) -> None:
        self.store.put(
            RUNS_NAMESPACE, fingerprint, config_run_result_to_dict(result)
        )
