"""Campaign workers: pull leases, execute them, report results.

A worker is a loop over a **broker transport** — either the in-process
:class:`LocalBrokerTransport` (tests, single-host fleets) or the
:class:`HttpBrokerTransport` speaking the versioned wire protocol to a
campaign server (``repro worker --server http://...``).  Both expose the
same three calls (``claim`` / ``complete`` / ``fail``), so the execution
path is identical wherever the broker lives.

Engine routing mirrors the single-process runners: leases whose engine
carries ``supports_batch`` registry metadata execute as **one tensor
pass** via :func:`~repro.measure.batched.run_batch_configurations`
(broker chunks are grouped to make that legal); every other engine runs
configuration by configuration via
:func:`~repro.measure.experiment.run_configuration`.  Either way the
results are bit-identical, because noise streams depend only on
``(seed, function, configuration key, repetition)``.

Capability claims: every claim advertises whether this worker executes
leases as tensor batches (``supports_batch``) and its self-measured
lanes/sec rate, so the broker can size each lease to the worker that is
asking (see :class:`~repro.service.broker.Broker`).  ``batch=False``
forces the per-configuration scalar path even for batch-capable engines
— the deliberate "slow fallback worker" of a heterogeneous fleet, still
bit-identical.

Fault injection (tests and CI chaos): the ``REPRO_SERVICE_FAULT``
environment variable (or the ``fault=`` argument) makes a worker
misbehave deterministically —

* ``crash:<n>`` — die silently while holding the *n*-th claimed lease
  (never reported; the broker's TTL reaper must recover it);
* ``fail:<n>`` — report the *n*-th claimed lease as failed, then keep
  working (exercises the immediate re-queue path);
* ``slow:<n>`` — from the *n*-th claimed lease onward, stall for
  ``REPRO_SERVICE_SLOW_SECONDS`` (default 1.0) before executing each
  lease (exercises straggler re-leasing; results stay correct, only
  late).

Failure classification: the run loop splits errors the way the retry
layer does.  **Transient** transport failures (broker restarting,
dropped responses) put the worker into a reconnect loop — it keeps
polling with backoff until ``reconnect_timeout`` elapses, so a fleet
rides out a server restart instead of dying with it.  **Fatal** errors
(protocol version skew, malformed lease payloads, unknown engines) will
recur on every lease; the worker fails the lease it holds, prints one
diagnostic line, and exits instead of hot-looping through its jobs'
attempt budgets.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Mapping

from ..errors import (
    ProtocolVersionMismatch,
    RegistryError,
    RetryExhausted,
    ServiceError,
    TransientServiceError,
)
from ..measure.batched import run_batch_configurations
from ..measure.experiment import config_key, run_configuration
from ..measure.io import config_run_result_to_dict
from ..measure.parallel import WorkloadSpec
from ..registry import ENGINE_REGISTRY, load_builtin_components
from .protocol import (
    capability_to_wire,
    configs_from_wire,
    envelope,
    measure_task_from_wire,
    open_envelope,
)

#: Environment variable carrying a fault spec
#: (``crash:<n>``/``fail:<n>``/``slow:<n>``).
FAULT_ENV = "REPRO_SERVICE_FAULT"
#: Seconds a ``slow:<n>`` worker stalls before executing each lease.
SLOW_ENV = "REPRO_SERVICE_SLOW_SECONDS"
DEFAULT_SLOW_SECONDS = 1.0


def _parse_fault(spec: "str | None") -> "tuple[str, int] | None":
    if not spec:
        return None
    kind, _, count = str(spec).partition(":")
    if (
        kind not in ("crash", "fail", "slow")
        or not count.isdigit()
        or int(count) < 1
    ):
        raise ServiceError(
            f"invalid {FAULT_ENV} spec {spec!r}: expected 'crash:<n>', "
            "'fail:<n>', or 'slow:<n>' with n >= 1"
        )
    return kind, int(count)


class LocalBrokerTransport:
    """Direct calls into an in-process :class:`~repro.service.broker.Broker`."""

    def __init__(self, broker) -> None:
        self.broker = broker

    def claim(
        self, worker: str, capability: "Mapping | None" = None
    ) -> "Mapping | None":
        capability = dict(capability or {})
        return self.broker.claim(
            worker,
            supports_batch=bool(capability.get("supports_batch", True)),
            lanes_per_sec=capability.get("lanes_per_sec"),
        )

    def complete(self, lease_id: str, results: list) -> None:
        self.broker.complete(lease_id, results)

    def fail(self, lease_id: str, reason: str) -> None:
        self.broker.fail(lease_id, reason)


class HttpBrokerTransport:
    """The same three calls over a campaign server's lease endpoints.

    Calls retry transient failures under the shared service policy.
    The lease surface is safe to retry: a re-sent completion or failure
    for a lease the server already resolved is a server-side no-op, and
    a claim whose response was dropped only costs a lease TTL.
    """

    def __init__(
        self, base_url: str, timeout: float = 30.0, retry=None
    ) -> None:
        from .retry import RetryPolicy

        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retry = retry if retry is not None else RetryPolicy.from_env()

    def _post(self, path: str, msg_type: str, body: Mapping, reply: str):
        from .remote_store import http_json, raise_for_error
        from .retry import retry_call

        url = f"{self.base_url}{path}"

        def call():
            status, payload = http_json(
                "POST", url, envelope(msg_type, body), timeout=self.timeout
            )
            raise_for_error(status, payload, url)
            return open_envelope(payload, reply)

        return retry_call(call, key=f"broker:{path}", policy=self.retry)

    def claim(
        self, worker: str, capability: "Mapping | None" = None
    ) -> "Mapping | None":
        body = self._post(
            "/api/v1/leases/claim",
            "lease.claim",
            capability_to_wire(worker, **dict(capability or {})),
            "lease.grant",
        )
        lease = body.get("lease") if isinstance(body, Mapping) else None
        return lease or None

    def complete(self, lease_id: str, results: list) -> None:
        self._post(
            f"/api/v1/leases/{lease_id}/complete",
            "lease.complete",
            {"results": results},
            "lease.ack",
        )

    def fail(self, lease_id: str, reason: str) -> None:
        self._post(
            f"/api/v1/leases/{lease_id}/fail",
            "lease.fail",
            {"reason": reason},
            "lease.ack",
        )


@dataclass
class WorkerStats:
    """What one worker's :meth:`Worker.run` loop did."""

    claimed: int = 0
    completed: int = 0
    failed: int = 0
    configurations: int = 0
    crashed: bool = False
    #: Transport outages survived (claim/report retried until the
    #: broker came back).
    reconnects: int = 0
    #: One-line diagnostic when the loop exited on a permanent error
    #: (version skew, malformed leases) instead of running dry.
    fatal_error: "str | None" = None


class Worker:
    """Pulls leases from a transport and executes them until stopped.

    ``max_leases`` bounds the number of *completed* leases (useful in
    tests); ``stop_when_idle`` exits once the queue drains instead of
    polling forever; ``idle_timeout`` bounds how long an idle worker
    polls before giving up.  ``batch=False`` opts out of tensor-batch
    execution: leases run configuration by configuration even on
    batch-capable engines (bit-identical, scalar speed), and the claim
    envelope advertises the reduced capability so the broker sizes
    leases accordingly.
    """

    def __init__(
        self,
        transport,
        worker_id: str = "worker",
        poll_interval: float = 0.05,
        max_leases: "int | None" = None,
        stop_when_idle: bool = False,
        idle_timeout: "float | None" = None,
        fault: "str | None" = None,
        batch: bool = True,
        reconnect_timeout: "float | None" = None,
    ) -> None:
        self.transport = transport
        self.worker_id = str(worker_id)
        self.poll_interval = poll_interval
        self.max_leases = max_leases
        self.stop_when_idle = stop_when_idle
        self.idle_timeout = idle_timeout
        self.batch = bool(batch)
        #: Seconds to keep re-polling through a broker outage before
        #: giving up; None reconnects forever (until stopped).
        self.reconnect_timeout = reconnect_timeout
        if fault is None:
            fault = os.environ.get(FAULT_ENV)
        self.fault = _parse_fault(fault)
        self.slow_seconds = float(
            os.environ.get(SLOW_ENV, DEFAULT_SLOW_SECONDS)
        )
        #: Self-measured lanes/sec (EWMA over executed leases), sent
        #: with every claim so a fresh broker can size the first lease.
        self.lanes_per_sec: "float | None" = None
        #: Per-job workload memo: rebuild once, reuse for every lease.
        self._workloads: dict[str, object] = {}
        load_builtin_components()

    def capability(self) -> dict:
        """The capability claim sent with every lease claim."""
        return {
            "supports_batch": self.batch,
            "lanes_per_sec": self.lanes_per_sec,
        }

    # -- the loop ----------------------------------------------------------

    def run(self, stop_event=None) -> WorkerStats:
        """Claim-execute-report until stopped; returns loop statistics."""
        stats = WorkerStats()
        idle_since: "float | None" = None
        down_since: "float | None" = None
        while not (stop_event is not None and stop_event.is_set()):
            if (
                self.max_leases is not None
                and stats.completed >= self.max_leases
            ):
                break
            try:
                lease = self.transport.claim(
                    self.worker_id, self.capability()
                )
            except (TransientServiceError, RetryExhausted) as exc:
                # Broker unreachable: reconnect instead of dying, so a
                # fleet rides out a server restart.
                now = time.monotonic()
                down_since = down_since if down_since is not None else now
                if (
                    self.reconnect_timeout is not None
                    and now - down_since > self.reconnect_timeout
                ):
                    stats.fatal_error = (
                        f"broker unreachable for "
                        f"{self.reconnect_timeout:g}s: {exc}"
                    )
                    break
                stats.reconnects += 1
                time.sleep(max(self.poll_interval, 0.1))
                continue
            if down_since is not None:
                down_since = None
            if lease is None:
                if self.stop_when_idle:
                    break
                now = time.monotonic()
                idle_since = idle_since if idle_since is not None else now
                if (
                    self.idle_timeout is not None
                    and now - idle_since > self.idle_timeout
                ):
                    break
                time.sleep(self.poll_interval)
                continue
            idle_since = None
            stats.claimed += 1
            if self.fault == ("crash", stats.claimed):
                # Die holding the lease, unreported: the broker's TTL
                # reaper is the only way this work comes back.
                stats.crashed = True
                break
            if (
                self.fault is not None
                and self.fault[0] == "slow"
                and stats.claimed >= self.fault[1]
            ):
                # Straggle: stall before executing, results stay correct.
                time.sleep(self.slow_seconds)
            lease_id = str(lease["lease"])
            started = time.monotonic()
            try:
                results = self.execute(lease)
            except (
                ProtocolVersionMismatch,
                RegistryError,
                ServiceError,
            ) as exc:
                # Fatal: version skew, an unknown engine, or a lease
                # that does not decode will recur on every claim — fail
                # this lease once and exit with a diagnostic instead of
                # hot-looping through the job's attempt budget.
                stats.failed += 1
                self._report_fail(lease_id, repr(exc), stats)
                stats.fatal_error = f"{type(exc).__name__}: {exc}"
                break
            except Exception as exc:  # noqa: BLE001 — report, keep serving
                stats.failed += 1
                self._report_fail(lease_id, repr(exc), stats)
                continue
            self._observe_rate(len(results), time.monotonic() - started)
            if self.fault == ("fail", stats.claimed):
                stats.failed += 1
                self._report_fail(
                    lease_id, f"injected fault ({FAULT_ENV})", stats
                )
                continue
            try:
                self.transport.complete(lease_id, results)
            except (TransientServiceError, RetryExhausted):
                # Completion lost in a broker restart: the lease TTL
                # (old broker) or job re-submission (new broker) will
                # re-pool this work; results are bit-identical either
                # way, so dropping the report is safe.
                stats.reconnects += 1
                continue
            stats.completed += 1
            stats.configurations += len(results)
        return stats

    def _report_fail(
        self, lease_id: str, reason: str, stats: WorkerStats
    ) -> None:
        """Report a lease failure; a broker outage mid-report is not
        itself fatal (the TTL reaper recovers the lease)."""
        try:
            self.transport.fail(lease_id, reason)
        except (TransientServiceError, RetryExhausted):
            stats.reconnects += 1

    def _observe_rate(self, lanes: int, elapsed: float) -> None:
        if lanes <= 0 or elapsed <= 0:
            return
        sample = lanes / elapsed
        self.lanes_per_sec = (
            sample
            if self.lanes_per_sec is None
            else 0.5 * self.lanes_per_sec + 0.5 * sample
        )

    # -- lease execution ---------------------------------------------------

    def _workload_for(self, job_id: str, spec: WorkloadSpec):
        workload = self._workloads.get(job_id)
        if workload is None:
            workload = spec.build()
            self._workloads[job_id] = workload
        return workload

    def execute(self, lease: Mapping) -> list[dict]:
        """Run one lease; returns wire-ready ``{"index", "result"}`` rows."""
        try:
            task = measure_task_from_wire(lease["task"])
            configs = configs_from_wire(lease["configs"])
            indices = [int(i) for i in lease["indices"]]
            job_id = str(lease["job"])
        except (ProtocolVersionMismatch, ServiceError):
            raise
        except Exception as exc:
            # A lease that does not even decode is a protocol/version
            # problem, not a transient one — type it so the run loop
            # exits instead of hot-looping.
            raise ServiceError(
                f"lease {lease.get('lease')!r} does not decode: {exc!r}"
            ) from exc
        workload = self._workload_for(job_id, task.workload_spec)
        if len(configs) != len(indices):
            raise ServiceError(
                f"malformed lease {lease.get('lease')!r}: "
                f"{len(indices)} indices but {len(configs)} configurations"
            )
        parameters = tuple(workload.parameters)
        program = workload.program()
        setups = [workload.setup(c) for c in configs]
        keys = [config_key(parameters, c) for c in configs]
        entry = ENGINE_REGISTRY.entry(task.engine)
        if entry.metadata.get("supports_batch") and self.batch:
            results = run_batch_configurations(
                program,
                setups,
                keys,
                task.plan,
                task.noise,
                task.contention,
                task.repetitions,
                task.seed,
                engine=task.engine,
            )
        else:
            results = [
                run_configuration(
                    program,
                    setup,
                    task.plan,
                    task.noise,
                    task.contention,
                    task.repetitions,
                    task.seed,
                    key,
                    engine=task.engine,
                )
                for setup, key in zip(setups, keys)
            ]
        return [
            {"index": index, "result": config_run_result_to_dict(result)}
            for index, result in zip(indices, results)
        ]
