"""The long-lived campaign server: submit, poll, fetch — over HTTP.

One :class:`CampaignService` owns the shared :class:`LocalStore` (stage
artifacts + run results), the measure-stage :class:`Broker`, and a
registry of submitted campaigns.  The HTTP layer on top is stdlib-only
(``http.server.ThreadingHTTPServer``; one thread per request, one thread
per running campaign) and speaks the versioned JSON envelopes of
:mod:`repro.service.protocol`:

========  =====================================  =======================
method    path                                   message
========  =====================================  =======================
GET       /api/v1/health                         -> health
POST      /api/v1/campaigns                      campaign.submit -> campaign.accepted
GET       /api/v1/campaigns/<id>                 -> campaign.status
GET       /api/v1/campaigns/<id>/artifact/<stage> -> campaign.artifact
POST      /api/v1/leases/claim                   lease.claim -> lease.grant
POST      /api/v1/leases/<id>/complete           lease.complete -> lease.ack
POST      /api/v1/leases/<id>/fail               lease.fail -> lease.ack
GET       /api/v1/telemetry                      -> telemetry
GET/HEAD  /api/v1/store/<ns>/<key>               -> store.entry / 404
PUT       /api/v1/store/<ns>/<key>               store.put -> store.ack
POST      /api/v1/store/<ns>/has-many            store.has_many -> store.presence
========  =====================================  =======================

Submitted campaigns run every stage *on the server* except measure,
which the broker leases out to attached ``repro worker`` processes.
Because stage artifacts live in the shared store and the scheduler is
not fingerprinted, a second submission of the same spec — from any
client — resumes every stage with zero profile executions.
"""

from __future__ import annotations

import itertools
import json
import pathlib
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Mapping

from ..core.stages import STAGES, Campaign
from ..errors import ReproError, ServiceError
from .broker import Broker, BrokerScheduler
from .protocol import capability_from_wire, envelope, open_envelope
from .remote_store import (
    STAGE_NAMESPACE,
    LocalStore,
    SharedWorkspace,
    http_json,
    raise_for_error,
)


class _CampaignRecord:
    """Book-keeping for one submitted campaign."""

    def __init__(self, campaign_id: str, spec: Mapping, campaign: Campaign):
        self.campaign_id = campaign_id
        self.spec = dict(spec)
        self.campaign = campaign
        self.state = "queued"  # queued | running | done | failed
        self.error: "str | None" = None
        self.stage_states: dict[str, str] = {
            name: "pending" for name in STAGES
        }
        self.profile_executions: "int | None" = None
        self.lock = threading.Lock()

    def status(self) -> dict:
        with self.lock:
            body = {
                "id": self.campaign_id,
                "state": self.state,
                "app": self.spec.get("app"),
                "stages": dict(self.stage_states),
                "fingerprints": dict(self.campaign.fingerprints),
                "profile_executions": self.profile_executions,
            }
            if self.error is not None:
                body["error"] = self.error
            if self.state == "done":
                body["stats_line"] = self.campaign.stats_line()
            return body


class CampaignService:
    """Campaign orchestration behind the HTTP surface (usable in-process).

    The tests drive this object directly; ``serve`` wraps it in the
    HTTP handler.  All campaign state is derivable from the store — the
    in-memory records only track liveness of this server's own runs.
    """

    def __init__(
        self,
        store_root: "str | pathlib.Path",
        lease_ttl: float = 30.0,
        max_attempts: int = 3,
        chunk_size: "int | None" = None,
        measure_timeout: "float | None" = None,
        target_lease_seconds: "float | None" = None,
    ) -> None:
        self.store = LocalStore(store_root)
        broker_kwargs = {}
        if target_lease_seconds is not None:
            broker_kwargs["target_lease_seconds"] = target_lease_seconds
        self.broker = Broker(
            store=self.store,
            lease_ttl=lease_ttl,
            max_attempts=max_attempts,
            chunk_size=chunk_size,
            **broker_kwargs,
        )
        self.measure_timeout = measure_timeout
        self._lock = threading.Lock()
        self._campaigns: dict[str, _CampaignRecord] = {}
        self._ids = itertools.count(1)

    # -- campaigns ---------------------------------------------------------

    def submit(self, spec: Mapping) -> str:
        """Validate *spec*, start the campaign thread, return its id."""
        if not isinstance(spec, Mapping):
            raise ServiceError(
                "campaign.submit body must carry a 'spec' mapping "
                "(the same keys as a TOML campaign file)"
            )
        spec = {k: v for k, v in spec.items() if k != "workspace"}
        campaign = Campaign.from_spec(
            spec, workspace=SharedWorkspace(self.store)
        )
        campaign.scheduler = BrokerScheduler(
            self.broker, timeout=self.measure_timeout
        )
        with self._lock:
            campaign_id = f"C{next(self._ids)}"
            record = _CampaignRecord(campaign_id, spec, campaign)
            self._campaigns[campaign_id] = record
        thread = threading.Thread(
            target=self._run, args=(record,), daemon=True,
            name=f"campaign-{campaign_id}",
        )
        thread.start()
        return campaign_id

    def _run(self, record: _CampaignRecord) -> None:
        campaign = record.campaign
        with record.lock:
            record.state = "running"
        try:
            for stage in STAGES.values():
                with record.lock:
                    record.stage_states[stage.name] = "running"
                campaign.run_stage(stage)
                with record.lock:
                    record.stage_states[stage.name] = campaign.stage_stats[
                        stage.name
                    ]
            with record.lock:
                if campaign.stage_stats.get("measure") == "computed":
                    record.profile_executions = (
                        campaign.scheduler.last_stats.executed
                    )
                else:
                    record.profile_executions = 0
                record.state = "done"
        except Exception as exc:  # noqa: BLE001 — surfaced via status
            with record.lock:
                for name, state in record.stage_states.items():
                    if state == "running":
                        record.stage_states[name] = "failed"
                record.error = f"{type(exc).__name__}: {exc}"
                record.state = "failed"

    def _record(self, campaign_id: str) -> _CampaignRecord:
        with self._lock:
            record = self._campaigns.get(campaign_id)
        if record is None:
            known = ", ".join(sorted(self._campaigns)) or "<none>"
            raise ServiceError(
                f"unknown campaign '{campaign_id}' "
                f"(campaigns on this server: {known})"
            )
        return record

    def status(self, campaign_id: str) -> dict:
        return self._record(campaign_id).status()

    def artifact(self, campaign_id: str, stage: str) -> dict:
        """The persisted artifact entry of one finished stage."""
        if stage not in STAGES:
            raise ServiceError(
                f"unknown stage '{stage}' "
                f"(stages: {', '.join(STAGES)})"
            )
        record = self._record(campaign_id)
        fingerprint = record.campaign.fingerprints.get(stage)
        if fingerprint is None:
            raise ServiceError(
                f"campaign '{campaign_id}' has no fingerprint for stage "
                f"'{stage}' yet — poll status until the stage has run"
            )
        entry = self.store.get(STAGE_NAMESPACE, f"{stage}-{fingerprint}")
        if entry is None:
            raise ServiceError(
                f"stage '{stage}' of campaign '{campaign_id}' "
                f"(fingerprint {fingerprint[:12]}) is not in the store yet"
            )
        return entry

    def health(self) -> dict:
        with self._lock:
            campaigns = len(self._campaigns)
        return {
            "status": "ok",
            "campaigns": campaigns,
            "queue_depth": self.broker.queue_depth(),
        }


# ----------------------------------------------------------------------
# the HTTP layer


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the owning server's CampaignService."""

    server_version = "repro-campaign/1"
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------

    @property
    def service(self) -> CampaignService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 — stdlib signature
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _send(self, status: int, payload: "dict | None") -> None:
        body = b""
        if payload is not None:
            body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if self.command != "HEAD" and body:
            self.wfile.write(body)

    def _body(self) -> object:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return None
        try:
            return json.loads(raw)
        except ValueError as exc:
            raise ServiceError(f"request body is not JSON: {exc}") from exc

    def _route(self, handler) -> None:
        try:
            handler()
        except ReproError as exc:
            status = 404 if "unknown campaign" in str(exc) else 400
            self._send(
                status,
                envelope(
                    "error",
                    {"error": str(exc), "kind": type(exc).__name__},
                ),
            )
        except Exception as exc:  # noqa: BLE001 — keep the server alive
            self._send(
                500,
                envelope(
                    "error",
                    {"error": f"{type(exc).__name__}: {exc}",
                     "kind": "InternalError"},
                ),
            )

    def _parts(self) -> list[str]:
        path = self.path.split("?", 1)[0]
        return [p for p in path.split("/") if p]

    # -- verbs -------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — stdlib naming
        self._route(self._get)

    def do_HEAD(self) -> None:  # noqa: N802
        self._route(self._get)

    def do_POST(self) -> None:  # noqa: N802
        self._route(self._post)

    def do_PUT(self) -> None:  # noqa: N802
        self._route(self._put)

    def _get(self) -> None:
        parts = self._parts()
        if parts[:2] != ["api", "v1"]:
            self._send(404, envelope("error", {"error": "unknown path"}))
            return
        rest = parts[2:]
        if rest == ["health"]:
            self._send(200, envelope("health", self.service.health()))
        elif rest == ["telemetry"]:
            self._send(
                200,
                envelope("telemetry", self.service.broker.telemetry()),
            )
        elif len(rest) == 2 and rest[0] == "campaigns":
            self._send(
                200,
                envelope("campaign.status", self.service.status(rest[1])),
            )
        elif len(rest) == 4 and rest[0] == "campaigns" and rest[2] == "artifact":
            entry = self.service.artifact(rest[1], rest[3])
            self._send(200, envelope("campaign.artifact", entry))
        elif len(rest) == 3 and rest[0] == "store":
            payload = self.service.store.get(rest[1], rest[2])
            if payload is None:
                self._send(
                    404, envelope("error", {"error": "no such entry"})
                )
            else:
                self._send(
                    200, envelope("store.entry", {"payload": payload})
                )
        else:
            self._send(404, envelope("error", {"error": "unknown path"}))

    def _post(self) -> None:
        parts = self._parts()
        rest = parts[2:] if parts[:2] == ["api", "v1"] else None
        if rest == ["campaigns"]:
            body = open_envelope(self._body(), "campaign.submit")
            spec = body.get("spec") if isinstance(body, Mapping) else None
            campaign_id = self.service.submit(spec)
            self._send(
                200, envelope("campaign.accepted", {"id": campaign_id})
            )
        elif rest == ["leases", "claim"]:
            body = open_envelope(self._body(), "lease.claim")
            worker, supports_batch, lanes_per_sec = capability_from_wire(
                body if isinstance(body, Mapping) else {}
            )
            lease = self.service.broker.claim(
                worker,
                supports_batch=supports_batch,
                lanes_per_sec=lanes_per_sec,
            )
            self._send(200, envelope("lease.grant", {"lease": lease}))
        elif rest is not None and len(rest) == 3 and rest[0] == "leases":
            lease_id, action = rest[1], rest[2]
            if action == "complete":
                body = open_envelope(self._body(), "lease.complete")
                results = (
                    body.get("results") if isinstance(body, Mapping) else None
                )
                if not isinstance(results, list):
                    raise ServiceError(
                        "lease.complete body must carry a 'results' list"
                    )
                self.service.broker.complete(lease_id, results)
                self._send(200, envelope("lease.ack", {"lease": lease_id}))
            elif action == "fail":
                body = open_envelope(self._body(), "lease.fail")
                reason = ""
                if isinstance(body, Mapping):
                    reason = str(body.get("reason") or "")
                self.service.broker.fail(lease_id, reason)
                self._send(200, envelope("lease.ack", {"lease": lease_id}))
            else:
                self._send(404, envelope("error", {"error": "unknown path"}))
        elif (
            rest is not None
            and len(rest) == 3
            and rest[0] == "store"
            and rest[2] == "has-many"
        ):
            body = open_envelope(self._body(), "store.has_many")
            keys = body.get("keys") if isinstance(body, Mapping) else None
            if not isinstance(keys, list):
                raise ServiceError(
                    "store.has_many body must carry a 'keys' list"
                )
            present = self.service.store.has_many(
                rest[1], [str(key) for key in keys]
            )
            self._send(
                200, envelope("store.presence", {"present": present})
            )
        else:
            self._send(404, envelope("error", {"error": "unknown path"}))

    def _put(self) -> None:
        parts = self._parts()
        rest = parts[2:] if parts[:2] == ["api", "v1"] else None
        if rest is not None and len(rest) == 3 and rest[0] == "store":
            body = open_envelope(self._body(), "store.put")
            if not isinstance(body, Mapping) or "payload" not in body:
                raise ServiceError(
                    "store.put body must carry a 'payload' entry"
                )
            self.service.store.put(rest[1], rest[2], body["payload"])
            self._send(200, envelope("store.ack", {}))
        else:
            self._send(404, envelope("error", {"error": "unknown path"}))


def serve(
    store_root: "str | pathlib.Path",
    host: str = "127.0.0.1",
    port: int = 8642,
    lease_ttl: float = 30.0,
    max_attempts: int = 3,
    chunk_size: "int | None" = None,
    verbose: bool = False,
    target_lease_seconds: "float | None" = None,
) -> ThreadingHTTPServer:
    """Build a ready-to-run campaign server (call ``serve_forever()``).

    ``port=0`` binds an ephemeral port (tests); the chosen address is
    ``httpd.server_address``.  The service object rides along as
    ``httpd.service``.
    """
    service = CampaignService(
        store_root,
        lease_ttl=lease_ttl,
        max_attempts=max_attempts,
        chunk_size=chunk_size,
        target_lease_seconds=target_lease_seconds,
    )
    httpd = ThreadingHTTPServer((host, port), _Handler)
    httpd.daemon_threads = True
    httpd.service = service  # type: ignore[attr-defined]
    httpd.verbose = verbose  # type: ignore[attr-defined]
    return httpd


# ----------------------------------------------------------------------
# the client


class ServiceClient:
    """Typed client for the campaign server (CLI + tests)."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _call(
        self,
        method: str,
        path: str,
        msg_type: "str | None" = None,
        body: "object | None" = None,
        reply: "str | None" = None,
    ):
        url = f"{self.base_url}{path}"
        payload = envelope(msg_type, body) if msg_type is not None else None
        status, response = http_json(
            method, url, payload, timeout=self.timeout
        )
        raise_for_error(status, response, url)
        return open_envelope(response, reply)

    def health(self) -> dict:
        return self._call("GET", "/api/v1/health", reply="health")

    def telemetry(self) -> dict:
        """Per-lease timing and per-worker rate estimates from the broker."""
        return self._call("GET", "/api/v1/telemetry", reply="telemetry")

    def submit(self, spec: Mapping) -> str:
        body = self._call(
            "POST",
            "/api/v1/campaigns",
            "campaign.submit",
            {"spec": dict(spec)},
            "campaign.accepted",
        )
        return str(body["id"])

    def status(self, campaign_id: str) -> dict:
        return self._call(
            "GET",
            f"/api/v1/campaigns/{campaign_id}",
            reply="campaign.status",
        )

    def artifact(self, campaign_id: str, stage: str) -> dict:
        return self._call(
            "GET",
            f"/api/v1/campaigns/{campaign_id}/artifact/{stage}",
            reply="campaign.artifact",
        )

    def wait(
        self,
        campaign_id: str,
        timeout: "float | None" = None,
        poll: float = 0.2,
    ) -> dict:
        """Poll until the campaign leaves the running states."""
        start = time.monotonic()
        while True:
            status = self.status(campaign_id)
            if status.get("state") in ("done", "failed"):
                return status
            if (
                timeout is not None
                and time.monotonic() - start > timeout
            ):
                raise ServiceError(
                    f"campaign '{campaign_id}' still "
                    f"{status.get('state')} after {timeout:g}s — "
                    "are any workers attached to the server?"
                )
            time.sleep(poll)
