"""The long-lived campaign server: submit, poll, fetch — over HTTP.

One :class:`CampaignService` owns the shared :class:`LocalStore` (stage
artifacts + run results), the measure-stage :class:`Broker`, and a
registry of submitted campaigns.  The HTTP layer on top is stdlib-only
(``http.server.ThreadingHTTPServer``; one thread per request, one thread
per running campaign) and speaks the versioned JSON envelopes of
:mod:`repro.service.protocol`:

========  =====================================  =======================
method    path                                   message
========  =====================================  =======================
GET       /api/v1/health                         -> health
POST      /api/v1/campaigns                      campaign.submit -> campaign.accepted
GET       /api/v1/campaigns/<id>                 -> campaign.status
GET       /api/v1/campaigns/<id>/artifact/<stage> -> campaign.artifact
POST      /api/v1/leases/claim                   lease.claim -> lease.grant
POST      /api/v1/leases/<id>/complete           lease.complete -> lease.ack
POST      /api/v1/leases/<id>/fail               lease.fail -> lease.ack
GET       /api/v1/telemetry                      -> telemetry
GET/HEAD  /api/v1/store/<ns>/<key>               -> store.entry / 404
PUT       /api/v1/store/<ns>/<key>               store.put -> store.ack
POST      /api/v1/store/<ns>/has-many            store.has_many -> store.presence
========  =====================================  =======================

Submitted campaigns run every stage *on the server* except measure,
which the broker leases out to attached ``repro worker`` processes.
Because stage artifacts live in the shared store and the scheduler is
not fingerprinted, a second submission of the same spec — from any
client — resumes every stage with zero profile executions.

Crash safety: every campaign transition is journaled to the store
(:mod:`repro.service.journal`), and a server restarted on the same store
root **recovers** — terminal campaigns are served from their journal
snapshots, unfinished ones are re-driven through the stage DAG (store
resume makes that bit-identical and re-execution-free for every stage
that had finished), and `repro status` marks them ``recovered`` with a
restart count.  SIGTERM drains in-flight leases before exit.

Chaos: ``REPRO_SERVICE_NET_FAULT=drop:<n>|garble:<n>|delay:<n>`` makes
the HTTP layer misbehave once, on the *n*-th request — the connection is
severed without a response, the response body is garbled to non-JSON, or
the response stalls — which is what the shared client retry policy is
tested against.
"""

from __future__ import annotations

import itertools
import json
import os
import pathlib
import socket
import threading
import time
import uuid
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Mapping

from ..core.stages import STAGES, Campaign
from ..errors import ReproError, ServiceError
from .broker import Broker, BrokerScheduler
from .journal import CampaignHistory, ServiceJournal
from .protocol import capability_from_wire, envelope, open_envelope
from .remote_store import (
    STAGE_NAMESPACE,
    LocalStore,
    SharedWorkspace,
    http_json,
    raise_for_error,
)
from .retry import RetryPolicy, retry_call

#: Environment variable carrying a server-side network fault spec
#: (``drop:<n>``/``garble:<n>``/``delay:<n>``, fired on the n-th request).
NET_FAULT_ENV = "REPRO_SERVICE_NET_FAULT"
#: Seconds a ``delay:<n>`` fault stalls the faulted response.
NET_DELAY_ENV = "REPRO_SERVICE_NET_DELAY_SECONDS"
DEFAULT_NET_DELAY_SECONDS = 0.5


def _parse_net_fault(spec: "str | None") -> "tuple[str, int] | None":
    if not spec:
        return None
    kind, _, count = str(spec).partition(":")
    if (
        kind not in ("drop", "garble", "delay")
        or not count.isdigit()
        or int(count) < 1
    ):
        raise ServiceError(
            f"invalid {NET_FAULT_ENV} spec {spec!r}: expected 'drop:<n>', "
            "'garble:<n>', or 'delay:<n>' with n >= 1"
        )
    return kind, int(count)


class _CampaignRecord:
    """Book-keeping for one submitted campaign.

    Lives in two flavours: a *live* record wrapping a running
    :class:`~repro.core.stages.Campaign`, and a *snapshot* record
    (``campaign is None``) rebuilt from the journal for campaigns that
    finished before a restart — status and artifacts keep working,
    there is just nothing left to run.
    """

    def __init__(
        self,
        campaign_id: str,
        spec: Mapping,
        campaign: "Campaign | None",
        recovered: bool = False,
        restarts: int = 0,
    ):
        self.campaign_id = campaign_id
        self.spec = dict(spec)
        self.campaign = campaign
        self.state = "queued"  # queued | running | done | failed
        self.error: "str | None" = None
        self.stage_states: dict[str, str] = {
            name: "pending" for name in STAGES
        }
        self.profile_executions: "int | None" = None
        #: True when this record crossed a server restart (either
        #: re-driven or restored from its journal snapshot).
        self.recovered = bool(recovered)
        #: How many restarts this campaign has crossed.
        self.restarts = int(restarts)
        #: Snapshot fingerprints/stats for records without a live
        #: campaign object (folded from the journal).
        self.fingerprints: dict[str, str] = {}
        self.stats_line_text: "str | None" = None
        self.lock = threading.Lock()

    @classmethod
    def from_history(cls, history: CampaignHistory) -> "_CampaignRecord":
        """A snapshot record for a journaled terminal campaign."""
        record = cls(
            history.campaign_id,
            history.spec,
            campaign=None,
            recovered=True,
            restarts=history.restarts,
        )
        record.state = history.state
        record.stage_states.update(history.stage_states)
        record.fingerprints = dict(history.fingerprints)
        record.profile_executions = history.profile_executions
        record.stats_line_text = history.stats_line
        record.error = history.error
        return record

    def stage_fingerprints(self) -> dict:
        if self.campaign is not None:
            return dict(self.campaign.fingerprints)
        return dict(self.fingerprints)

    def status(self) -> dict:
        with self.lock:
            # Deterministic field order: `repro status` renders as-is.
            body = {
                "id": self.campaign_id,
                "state": self.state,
                "app": self.spec.get("app"),
                "recovered": self.recovered,
                "restarts": self.restarts,
                "stages": dict(self.stage_states),
                "fingerprints": self.stage_fingerprints(),
                "profile_executions": self.profile_executions,
            }
            if self.error is not None:
                body["error"] = self.error
            if self.state == "done":
                body["stats_line"] = (
                    self.campaign.stats_line()
                    if self.campaign is not None
                    else self.stats_line_text
                )
            return body


class CampaignService:
    """Campaign orchestration behind the HTTP surface (usable in-process).

    The tests drive this object directly; ``serve`` wraps it in the
    HTTP handler.  All campaign state is derivable from the store — the
    in-memory records only track liveness of this server's own runs.
    """

    def __init__(
        self,
        store_root: "str | pathlib.Path",
        lease_ttl: float = 30.0,
        max_attempts: int = 3,
        chunk_size: "int | None" = None,
        measure_timeout: "float | None" = None,
        target_lease_seconds: "float | None" = None,
        journal: bool = True,
    ) -> None:
        self.store = LocalStore(store_root)
        self.journal = ServiceJournal(self.store) if journal else None
        broker_kwargs = {}
        if target_lease_seconds is not None:
            broker_kwargs["target_lease_seconds"] = target_lease_seconds
        self.broker = Broker(
            store=self.store,
            lease_ttl=lease_ttl,
            max_attempts=max_attempts,
            chunk_size=chunk_size,
            journal=self.journal,
            **broker_kwargs,
        )
        self.measure_timeout = measure_timeout
        self._lock = threading.Lock()
        self._campaigns: dict[str, _CampaignRecord] = {}
        self._ids = itertools.count(1)
        #: Idempotency token -> campaign id (rebuilt from the journal).
        self._tokens: dict[str, str] = {}
        self.restarts = 0
        if self.journal is not None:
            self.restarts = max(0, self.journal.bump_incarnation() - 1)
            self._recover()

    # -- recovery ----------------------------------------------------------

    def _recover(self) -> None:
        """Replay the journal: restore snapshots, re-drive the unfinished.

        Terminal campaigns come back as snapshot records (status and
        artifact endpoints keep answering for them).  Unfinished ones
        are resubmitted through the stage DAG — every stage whose
        artifact reached the store resumes bit-identically, so recovery
        re-executes nothing that finished before the crash.
        """
        histories = self.journal.replay()
        max_id = 0
        for campaign_id, history in histories.items():
            tail = campaign_id.lstrip("C")
            if tail.isdigit():
                max_id = max(max_id, int(tail))
            if history.token:
                self._tokens[history.token] = campaign_id
            if history.terminal:
                record = _CampaignRecord.from_history(history)
                with self._lock:
                    self._campaigns[campaign_id] = record
                continue
            self._redrive(history)
        with self._lock:
            self._ids = itertools.count(max_id + 1)

    def _redrive(self, history: CampaignHistory) -> None:
        """Restart one unfinished journaled campaign from its spec."""
        campaign_id = history.campaign_id
        record = _CampaignRecord(
            campaign_id,
            history.spec,
            campaign=None,
            recovered=True,
            restarts=history.restarts + 1,
        )
        record.stage_states.update(history.stage_states)
        record.fingerprints = dict(history.fingerprints)
        with self._lock:
            self._campaigns[campaign_id] = record
        try:
            campaign = Campaign.from_spec(
                history.spec, workspace=SharedWorkspace(self.store)
            )
            campaign.scheduler = BrokerScheduler(
                self.broker, timeout=self.measure_timeout
            )
        except Exception as exc:  # noqa: BLE001 — surfaced via status
            with record.lock:
                record.state = "failed"
                record.error = f"{type(exc).__name__}: {exc}"
            self._journal(campaign_id, "failed", {"error": record.error})
            return
        record.campaign = campaign
        self._journal(
            campaign_id, "recovered", {"incarnation": self.restarts + 1}
        )
        self._start(record)

    # -- campaigns ---------------------------------------------------------

    def submit(self, spec: Mapping, token: "str | None" = None) -> str:
        """Validate *spec*, start the campaign thread, return its id.

        *token* is the client's idempotency token: a retried submit
        carrying a token this service has already accepted (in this or
        any prior incarnation) returns the original campaign id instead
        of starting a duplicate campaign.
        """
        if not isinstance(spec, Mapping):
            raise ServiceError(
                "campaign.submit body must carry a 'spec' mapping "
                "(the same keys as a TOML campaign file)"
            )
        spec = {k: v for k, v in spec.items() if k != "workspace"}
        campaign = Campaign.from_spec(
            spec, workspace=SharedWorkspace(self.store)
        )
        campaign.scheduler = BrokerScheduler(
            self.broker, timeout=self.measure_timeout
        )
        with self._lock:
            if token is not None and token in self._tokens:
                return self._tokens[token]
            campaign_id = f"C{next(self._ids)}"
            record = _CampaignRecord(campaign_id, spec, campaign)
            self._campaigns[campaign_id] = record
            if token is not None:
                self._tokens[token] = campaign_id
        self._journal(
            campaign_id, "accepted", {"spec": spec, "token": token}
        )
        self._start(record)
        return campaign_id

    def _start(self, record: _CampaignRecord) -> None:
        thread = threading.Thread(
            target=self._run, args=(record,), daemon=True,
            name=f"campaign-{record.campaign_id}",
        )
        thread.start()

    def _journal(self, campaign_id: str, event: str, data: Mapping) -> None:
        if self.journal is not None:
            self.journal.record(campaign_id, event, data)

    def _run(self, record: _CampaignRecord) -> None:
        campaign = record.campaign
        with record.lock:
            record.state = "running"
        try:
            for stage in STAGES.values():
                with record.lock:
                    record.stage_states[stage.name] = "running"
                campaign.run_stage(stage)
                with record.lock:
                    record.stage_states[stage.name] = campaign.stage_stats[
                        stage.name
                    ]
                self._journal(
                    record.campaign_id,
                    "stage",
                    {
                        "stage": stage.name,
                        "status": campaign.stage_stats[stage.name],
                        "fingerprint": campaign.fingerprints.get(stage.name),
                    },
                )
            with record.lock:
                if campaign.stage_stats.get("measure") == "computed":
                    record.profile_executions = (
                        campaign.scheduler.last_stats.executed
                    )
                else:
                    record.profile_executions = 0
                record.state = "done"
            self._journal(
                record.campaign_id,
                "done",
                {
                    "fingerprints": dict(campaign.fingerprints),
                    "profile_executions": record.profile_executions,
                    "stats_line": campaign.stats_line(),
                },
            )
        except Exception as exc:  # noqa: BLE001 — surfaced via status
            with record.lock:
                for name, state in record.stage_states.items():
                    if state == "running":
                        record.stage_states[name] = "failed"
                record.error = f"{type(exc).__name__}: {exc}"
                record.state = "failed"
            try:
                self._journal(
                    record.campaign_id, "failed", {"error": record.error}
                )
            except Exception:  # noqa: BLE001 — store may be the failure
                pass

    def _record(self, campaign_id: str) -> _CampaignRecord:
        with self._lock:
            record = self._campaigns.get(campaign_id)
        if record is None:
            known = ", ".join(sorted(self._campaigns)) or "<none>"
            raise ServiceError(
                f"unknown campaign '{campaign_id}' "
                f"(campaigns on this server: {known})"
            )
        return record

    def status(self, campaign_id: str) -> dict:
        return self._record(campaign_id).status()

    def artifact(self, campaign_id: str, stage: str) -> dict:
        """The persisted artifact entry of one finished stage."""
        if stage not in STAGES:
            raise ServiceError(
                f"unknown stage '{stage}' "
                f"(stages: {', '.join(STAGES)})"
            )
        record = self._record(campaign_id)
        fingerprint = record.stage_fingerprints().get(stage)
        if fingerprint is None:
            raise ServiceError(
                f"campaign '{campaign_id}' has no fingerprint for stage "
                f"'{stage}' yet — poll status until the stage has run"
            )
        entry = self.store.get(STAGE_NAMESPACE, f"{stage}-{fingerprint}")
        if entry is None:
            raise ServiceError(
                f"stage '{stage}' of campaign '{campaign_id}' "
                f"(fingerprint {fingerprint[:12]}) is not in the store yet"
            )
        return entry

    def health(self) -> dict:
        with self._lock:
            campaigns = len(self._campaigns)
        return {
            "status": "ok",
            "campaigns": campaigns,
            "queue_depth": self.broker.queue_depth(),
        }

    def telemetry(self) -> dict:
        """Broker telemetry plus store health and recovery counters.

        Field order is deterministic (``repro status`` renders as-is):
        broker ``leases``/``workers``, then ``store`` quarantine
        counters, then ``service`` restart/recovery state.
        """
        data = self.broker.telemetry()
        data["store"] = self.store.corrupt_stats()
        with self._lock:
            recovered = sorted(
                (
                    campaign_id
                    for campaign_id, record in self._campaigns.items()
                    if record.recovered
                ),
                key=lambda c: (
                    c.rstrip("0123456789"),
                    int(c.lstrip("C")) if c.lstrip("C").isdigit() else -1,
                ),
            )
        data["service"] = {
            "restarts": self.restarts,
            "journal_corrupt_entries": (
                self.journal.corrupt_entries if self.journal else 0
            ),
            "recovered_campaigns": recovered,
        }
        return data

    def drain(self, timeout: "float | None" = None) -> bool:
        """Graceful-shutdown hook: stop granting leases, wait for the
        in-flight ones to land.  Returns True on a clean drain."""
        return self.broker.drain(timeout)


# ----------------------------------------------------------------------
# the HTTP layer


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the owning server's CampaignService."""

    server_version = "repro-campaign/1"
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------

    @property
    def service(self) -> CampaignService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 — stdlib signature
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _send(self, status: int, payload: "dict | None") -> None:
        body = b""
        if payload is not None:
            body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if self.command != "HEAD" and body:
            self.wfile.write(body)

    def _body(self) -> object:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return None
        try:
            return json.loads(raw)
        except ValueError as exc:
            raise ServiceError(f"request body is not JSON: {exc}") from exc

    def _inject_net_fault(self) -> bool:
        """Fire the server's single-shot network fault if this is the
        n-th request.  Returns True when the request was consumed
        (dropped/garbled) and must not be handled."""
        fault = getattr(self.server, "net_fault", None)
        if fault is None:
            return False
        kind, n = fault
        with self.server.net_fault_lock:  # type: ignore[attr-defined]
            self.server.net_requests += 1  # type: ignore[attr-defined]
            if self.server.net_requests != n:  # type: ignore[attr-defined]
                return False
            self.server.net_fault = None  # type: ignore[attr-defined]
        if kind == "drop":
            # Sever the connection with no response: the client sees a
            # reset/empty reply and must retry.
            self.close_connection = True
            try:
                self.connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            return True
        if kind == "garble":
            raw = b"{ \"this\": is not json"
            self.send_response(200)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(raw)))
            self.end_headers()
            self.wfile.write(raw)
            return True
        # kind == "delay": stall, then handle normally.
        time.sleep(
            float(
                os.environ.get(NET_DELAY_ENV, DEFAULT_NET_DELAY_SECONDS)
            )
        )
        return False

    def _route(self, handler) -> None:
        try:
            if self._inject_net_fault():
                return
            handler()
        except ReproError as exc:
            status = 404 if "unknown campaign" in str(exc) else 400
            self._send(
                status,
                envelope(
                    "error",
                    {"error": str(exc), "kind": type(exc).__name__},
                ),
            )
        except Exception as exc:  # noqa: BLE001 — keep the server alive
            self._send(
                500,
                envelope(
                    "error",
                    {"error": f"{type(exc).__name__}: {exc}",
                     "kind": "InternalError"},
                ),
            )

    def _parts(self) -> list[str]:
        path = self.path.split("?", 1)[0]
        return [p for p in path.split("/") if p]

    # -- verbs -------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — stdlib naming
        self._route(self._get)

    def do_HEAD(self) -> None:  # noqa: N802
        self._route(self._get)

    def do_POST(self) -> None:  # noqa: N802
        self._route(self._post)

    def do_PUT(self) -> None:  # noqa: N802
        self._route(self._put)

    def _get(self) -> None:
        parts = self._parts()
        if parts[:2] != ["api", "v1"]:
            self._send(404, envelope("error", {"error": "unknown path"}))
            return
        rest = parts[2:]
        if rest == ["health"]:
            self._send(200, envelope("health", self.service.health()))
        elif rest == ["telemetry"]:
            self._send(
                200,
                envelope("telemetry", self.service.telemetry()),
            )
        elif len(rest) == 2 and rest[0] == "campaigns":
            self._send(
                200,
                envelope("campaign.status", self.service.status(rest[1])),
            )
        elif len(rest) == 4 and rest[0] == "campaigns" and rest[2] == "artifact":
            entry = self.service.artifact(rest[1], rest[3])
            self._send(200, envelope("campaign.artifact", entry))
        elif len(rest) == 3 and rest[0] == "store":
            payload = self.service.store.get(rest[1], rest[2])
            if payload is None:
                self._send(
                    404, envelope("error", {"error": "no such entry"})
                )
            else:
                self._send(
                    200, envelope("store.entry", {"payload": payload})
                )
        else:
            self._send(404, envelope("error", {"error": "unknown path"}))

    def _post(self) -> None:
        parts = self._parts()
        rest = parts[2:] if parts[:2] == ["api", "v1"] else None
        if rest == ["campaigns"]:
            body = open_envelope(self._body(), "campaign.submit")
            spec = body.get("spec") if isinstance(body, Mapping) else None
            token = None
            if isinstance(body, Mapping) and body.get("token"):
                token = str(body["token"])
            campaign_id = self.service.submit(spec, token=token)
            self._send(
                200, envelope("campaign.accepted", {"id": campaign_id})
            )
        elif rest == ["leases", "claim"]:
            body = open_envelope(self._body(), "lease.claim")
            worker, supports_batch, lanes_per_sec = capability_from_wire(
                body if isinstance(body, Mapping) else {}
            )
            lease = self.service.broker.claim(
                worker,
                supports_batch=supports_batch,
                lanes_per_sec=lanes_per_sec,
            )
            self._send(200, envelope("lease.grant", {"lease": lease}))
        elif rest is not None and len(rest) == 3 and rest[0] == "leases":
            lease_id, action = rest[1], rest[2]
            if action == "complete":
                body = open_envelope(self._body(), "lease.complete")
                results = (
                    body.get("results") if isinstance(body, Mapping) else None
                )
                if not isinstance(results, list):
                    raise ServiceError(
                        "lease.complete body must carry a 'results' list"
                    )
                self.service.broker.complete(lease_id, results)
                self._send(200, envelope("lease.ack", {"lease": lease_id}))
            elif action == "fail":
                body = open_envelope(self._body(), "lease.fail")
                reason = ""
                if isinstance(body, Mapping):
                    reason = str(body.get("reason") or "")
                self.service.broker.fail(lease_id, reason)
                self._send(200, envelope("lease.ack", {"lease": lease_id}))
            else:
                self._send(404, envelope("error", {"error": "unknown path"}))
        elif (
            rest is not None
            and len(rest) == 3
            and rest[0] == "store"
            and rest[2] == "has-many"
        ):
            body = open_envelope(self._body(), "store.has_many")
            keys = body.get("keys") if isinstance(body, Mapping) else None
            if not isinstance(keys, list):
                raise ServiceError(
                    "store.has_many body must carry a 'keys' list"
                )
            present = self.service.store.has_many(
                rest[1], [str(key) for key in keys]
            )
            self._send(
                200, envelope("store.presence", {"present": present})
            )
        else:
            self._send(404, envelope("error", {"error": "unknown path"}))

    def _put(self) -> None:
        parts = self._parts()
        rest = parts[2:] if parts[:2] == ["api", "v1"] else None
        if rest is not None and len(rest) == 3 and rest[0] == "store":
            body = open_envelope(self._body(), "store.put")
            if not isinstance(body, Mapping) or "payload" not in body:
                raise ServiceError(
                    "store.put body must carry a 'payload' entry"
                )
            self.service.store.put(rest[1], rest[2], body["payload"])
            self._send(200, envelope("store.ack", {}))
        else:
            self._send(404, envelope("error", {"error": "unknown path"}))


def serve(
    store_root: "str | pathlib.Path",
    host: str = "127.0.0.1",
    port: int = 8642,
    lease_ttl: float = 30.0,
    max_attempts: int = 3,
    chunk_size: "int | None" = None,
    verbose: bool = False,
    target_lease_seconds: "float | None" = None,
    journal: bool = True,
    net_fault: "str | None" = None,
) -> ThreadingHTTPServer:
    """Build a ready-to-run campaign server (call ``serve_forever()``).

    ``port=0`` binds an ephemeral port (tests); the chosen address is
    ``httpd.server_address``.  The service object rides along as
    ``httpd.service``.  ``journal=False`` disables crash-safety
    journaling (and with it restart recovery).  ``net_fault`` injects a
    single-shot network fault (``drop:<n>``/``garble:<n>``/
    ``delay:<n>``); it defaults to the ``REPRO_SERVICE_NET_FAULT``
    environment variable.
    """
    service = CampaignService(
        store_root,
        lease_ttl=lease_ttl,
        max_attempts=max_attempts,
        chunk_size=chunk_size,
        target_lease_seconds=target_lease_seconds,
        journal=journal,
    )
    if net_fault is None:
        net_fault = os.environ.get(NET_FAULT_ENV)
    httpd = ThreadingHTTPServer((host, port), _Handler)
    httpd.daemon_threads = True
    httpd.service = service  # type: ignore[attr-defined]
    httpd.verbose = verbose  # type: ignore[attr-defined]
    httpd.net_fault = _parse_net_fault(net_fault)  # type: ignore[attr-defined]
    httpd.net_fault_lock = threading.Lock()  # type: ignore[attr-defined]
    httpd.net_requests = 0  # type: ignore[attr-defined]
    return httpd


# ----------------------------------------------------------------------
# the client


class ServiceClient:
    """Typed client for the campaign server (CLI + tests).

    Every call retries transient failures under the shared service
    policy; submits carry a generated idempotency token, so a submit
    whose response was dropped can be re-sent without starting a
    duplicate campaign.
    """

    def __init__(
        self, base_url: str, timeout: float = 30.0, retry=None
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retry = (
            retry if retry is not None else RetryPolicy.from_env()
        )

    def _call(
        self,
        method: str,
        path: str,
        msg_type: "str | None" = None,
        body: "object | None" = None,
        reply: "str | None" = None,
        retry_key: "str | None" = None,
    ):
        url = f"{self.base_url}{path}"
        payload = envelope(msg_type, body) if msg_type is not None else None

        def call():
            status, response = http_json(
                method, url, payload, timeout=self.timeout
            )
            raise_for_error(status, response, url)
            return open_envelope(response, reply)

        return retry_call(
            call,
            key=retry_key or f"client:{method}:{path}",
            policy=self.retry,
        )

    def health(self) -> dict:
        return self._call("GET", "/api/v1/health", reply="health")

    def telemetry(self) -> dict:
        """Per-lease timing and per-worker rate estimates from the broker."""
        return self._call("GET", "/api/v1/telemetry", reply="telemetry")

    def submit(self, spec: Mapping) -> str:
        # The token makes a retried submit (response lost in transit)
        # return the original campaign id instead of a duplicate.
        token = uuid.uuid4().hex
        body = self._call(
            "POST",
            "/api/v1/campaigns",
            "campaign.submit",
            {"spec": dict(spec), "token": token},
            "campaign.accepted",
            retry_key=f"campaign.submit:{token}",
        )
        return str(body["id"])

    def status(self, campaign_id: str) -> dict:
        return self._call(
            "GET",
            f"/api/v1/campaigns/{campaign_id}",
            reply="campaign.status",
        )

    def artifact(self, campaign_id: str, stage: str) -> dict:
        return self._call(
            "GET",
            f"/api/v1/campaigns/{campaign_id}/artifact/{stage}",
            reply="campaign.artifact",
        )

    def wait(
        self,
        campaign_id: str,
        timeout: "float | None" = None,
        poll: float = 0.2,
    ) -> dict:
        """Poll until the campaign leaves the running states."""
        start = time.monotonic()
        while True:
            status = self.status(campaign_id)
            if status.get("state") in ("done", "failed"):
                return status
            if (
                timeout is not None
                and time.monotonic() - start > timeout
            ):
                raise ServiceError(
                    f"campaign '{campaign_id}' still "
                    f"{status.get('state')} after {timeout:g}s — "
                    "are any workers attached to the server?"
                )
            time.sleep(poll)
