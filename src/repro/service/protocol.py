"""The campaign service's wire protocol: versioned, validated JSON.

Every message between clients, the campaign server, the broker, and the
workers is a JSON **envelope**::

    {"protocol": 1, "type": "<message type>", "body": {...}}

:func:`open_envelope` rejects unknown versions with a typed
:class:`~repro.errors.ProtocolVersionMismatch` instead of silently
misinterpreting messages from a peer running a different repro version.

Message bodies are built from two existing content-addressed currencies:

* :class:`~repro.measure.parallel.WorkloadSpec` — the picklable
  (factory, args, kwargs) recipe the process-pool runners already ship
  to workers — encoded here as pure JSON via a small marked codec
  (:func:`to_wire` / :func:`from_wire`) that handles the dataclasses,
  enums, tuples, and module-level callables workload specs are made of;
* sha256 fingerprints — the per-stage artifact fingerprints of
  :mod:`repro.core.stages` and the per-configuration run fingerprints of
  :func:`repro.measure.parallel.configuration_fingerprint` — which name
  every piece of work and every cache entry fleet-wide.

JSON round trips are exact: Python floats serialize via ``repr`` (the
shortest round-tripping form), so a measurement that crosses the wire is
bit-identical to one that never left the process.

Trust model: :func:`from_wire` resolves ``module:qualname`` references by
import, exactly like unpickling a :class:`WorkloadSpec` does — the
service is a cooperative compute fleet, not a boundary against hostile
peers.
"""

from __future__ import annotations

import dataclasses
import enum
import importlib
import json
from dataclasses import dataclass
from typing import Mapping

from ..errors import ProtocolVersionMismatch, ServiceError
from ..measure.experiment import Workload
from ..measure.instrumentation import InstrumentationPlan
from ..measure.parallel import WorkloadSpec, spec_of

#: Version of the service wire protocol; bump on incompatible change.
PROTOCOL_VERSION = 1

_KIND = "__kind__"


# ----------------------------------------------------------------------
# envelopes


def envelope(msg_type: str, body: object) -> dict:
    """Wrap *body* in a versioned message envelope."""
    return {"protocol": PROTOCOL_VERSION, "type": str(msg_type), "body": body}


def open_envelope(payload: object, expected_type: "str | None" = None):
    """Validate an envelope and return its body.

    Raises :class:`ProtocolVersionMismatch` on a version skew and
    :class:`ServiceError` on a malformed or unexpected message.
    """
    if not isinstance(payload, Mapping):
        raise ServiceError(
            f"malformed service message: expected a JSON object envelope, "
            f"got {type(payload).__name__}"
        )
    version = payload.get("protocol")
    if version != PROTOCOL_VERSION:
        raise ProtocolVersionMismatch(version, PROTOCOL_VERSION)
    msg_type = payload.get("type")
    if expected_type is not None and msg_type != expected_type:
        raise ServiceError(
            f"unexpected service message type {msg_type!r} "
            f"(expected {expected_type!r})"
        )
    if "body" not in payload:
        raise ServiceError(
            f"malformed service message of type {msg_type!r}: missing body"
        )
    return payload["body"]


# ----------------------------------------------------------------------
# the marked value codec


def _ref_of(obj: object) -> str:
    module = getattr(obj, "__module__", None)
    qualname = getattr(obj, "__qualname__", None)
    if not module or not qualname or "<locals>" in qualname:
        raise ServiceError(
            f"cannot encode {obj!r} for the wire: only module-level "
            "functions and classes are addressable by reference "
            "(define it at module scope so workers can import it)"
        )
    return f"{module}:{qualname}"


def _resolve_ref(ref: str):
    module_name, _, qualname = str(ref).partition(":")
    if not module_name or not qualname:
        raise ServiceError(f"malformed wire reference {ref!r}")
    try:
        obj = importlib.import_module(module_name)
    except ImportError as exc:
        raise ServiceError(
            f"cannot resolve wire reference {ref!r}: {exc} — the worker "
            "must have the same code importable as the submitting client"
        ) from exc
    for part in qualname.split("."):
        try:
            obj = getattr(obj, part)
        except AttributeError:
            raise ServiceError(
                f"cannot resolve wire reference {ref!r}: module "
                f"'{module_name}' has no attribute path '{qualname}'"
            ) from None
    return obj


def to_wire(value: object) -> object:
    """Encode *value* as pure JSON-able data.

    Primitives pass through; containers, dataclasses, enums, and
    module-level callables become ``{"__kind__": ...}`` marker objects,
    so :func:`from_wire` reconstructs the exact Python value (tuples stay
    tuples, frozensets stay frozensets, dataclass types are preserved).
    """
    # Enums before primitives: str/int-mixin enums (InstrumentationMode
    # is a str subclass) must keep their enum identity across the wire.
    if isinstance(value, enum.Enum):
        return {
            _KIND: "enum",
            "ref": _ref_of(type(value)),
            "value": to_wire(value.value),
        }
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            _KIND: "dataclass",
            "ref": _ref_of(type(value)),
            "fields": {
                field.name: to_wire(getattr(value, field.name))
                for field in dataclasses.fields(value)
            },
        }
    if isinstance(value, (list, tuple)):
        return {
            _KIND: "tuple" if isinstance(value, tuple) else "list",
            "items": [to_wire(item) for item in value],
        }
    if isinstance(value, (set, frozenset)):
        items = [to_wire(item) for item in value]
        items.sort(key=lambda enc: json.dumps(enc, sort_keys=True))
        return {
            _KIND: "frozenset" if isinstance(value, frozenset) else "set",
            "items": items,
        }
    if isinstance(value, Mapping):
        return {
            _KIND: "dict",
            "items": [[to_wire(k), to_wire(v)] for k, v in value.items()],
        }
    if callable(value):
        return {_KIND: "ref", "ref": _ref_of(value)}
    raise ServiceError(
        f"cannot encode {type(value).__name__} value {value!r} for the "
        "wire: supported are JSON primitives, containers, enums, "
        "dataclasses, and module-level callables"
    )


def from_wire(value: object) -> object:
    """Inverse of :func:`to_wire`."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, list):  # only produced by raw JSON, be lenient
        return [from_wire(item) for item in value]
    if not isinstance(value, Mapping):
        raise ServiceError(
            f"malformed wire value of type {type(value).__name__}"
        )
    kind = value.get(_KIND)
    if kind == "tuple":
        return tuple(from_wire(item) for item in value["items"])
    if kind == "list":
        return [from_wire(item) for item in value["items"]]
    if kind == "set":
        return {from_wire(item) for item in value["items"]}
    if kind == "frozenset":
        return frozenset(from_wire(item) for item in value["items"])
    if kind == "dict":
        return {
            from_wire(k): from_wire(v) for k, v in value["items"]
        }
    if kind == "enum":
        cls = _resolve_ref(value["ref"])
        return cls(from_wire(value["value"]))
    if kind == "dataclass":
        cls = _resolve_ref(value["ref"])
        if not dataclasses.is_dataclass(cls):
            raise ServiceError(
                f"wire reference {value['ref']!r} is not a dataclass"
            )
        fields = {
            str(name): from_wire(enc)
            for name, enc in value["fields"].items()
        }
        try:
            return cls(**fields)
        except TypeError as exc:
            raise ServiceError(
                f"cannot rebuild {value['ref']!r} from wire fields: {exc}"
            ) from None
    if kind == "ref":
        return _resolve_ref(value["ref"])
    raise ServiceError(f"unknown wire value kind {kind!r}")


# ----------------------------------------------------------------------
# workload specs


def workload_spec_to_wire(spec: WorkloadSpec) -> dict:
    """Encode a workload spec as JSON (factory by importable reference)."""
    return {
        "factory": to_wire(spec.factory),
        "args": to_wire(tuple(spec.args)),
        "kwargs": to_wire(dict(spec.kwargs)),
    }


def workload_spec_from_wire(payload: Mapping) -> WorkloadSpec:
    """Inverse of :func:`workload_spec_to_wire`."""
    factory = from_wire(payload["factory"])
    if not callable(factory):
        raise ServiceError(
            f"workload spec factory {payload.get('factory')!r} did not "
            "resolve to a callable"
        )
    return WorkloadSpec(
        factory=factory,
        args=tuple(from_wire(payload["args"])),
        kwargs=dict(from_wire(payload["kwargs"])),
    )


def workload_to_wire(workload: Workload) -> dict:
    """Encode *workload* via its :meth:`spec` recipe.

    Workloads without a ``spec()`` method fall back to shipping the
    object itself, which only works when it is wire-encodable (a
    dataclass of encodable fields); otherwise a :class:`ServiceError`
    names the workload and the fix.
    """
    spec = spec_of(workload)
    try:
        return workload_spec_to_wire(spec)
    except ServiceError as exc:
        name = getattr(workload, "name", type(workload).__name__)
        raise ServiceError(
            f"workload '{name}' cannot cross the service wire: {exc} — "
            "give the workload class a spec() method returning a "
            "WorkloadSpec with an importable factory (see "
            "repro.measure.parallel.WorkloadSpec)"
        ) from exc


# ----------------------------------------------------------------------
# measure tasks (the lease payload)


@dataclass(frozen=True)
class MeasureTask:
    """Everything a worker needs to execute one measure-stage chunk."""

    workload_spec: WorkloadSpec
    plan: InstrumentationPlan
    noise: object
    contention: object
    repetitions: int
    seed: int
    engine: str


def measure_task_to_wire(
    workload: Workload,
    plan: InstrumentationPlan,
    noise: object,
    contention: object,
    repetitions: int,
    seed: int,
    engine: str,
) -> dict:
    """Encode the shared, per-job half of a lease payload."""
    return {
        "workload": workload_to_wire(workload),
        "plan": to_wire(plan),
        "noise": to_wire(noise),
        "contention": to_wire(contention),
        "repetitions": int(repetitions),
        "seed": int(seed),
        "engine": str(engine),
    }


def measure_task_from_wire(payload: Mapping) -> MeasureTask:
    """Inverse of :func:`measure_task_to_wire`."""
    plan = from_wire(payload["plan"])
    if not isinstance(plan, InstrumentationPlan):
        raise ServiceError(
            "measure task plan did not decode to an InstrumentationPlan"
        )
    return MeasureTask(
        workload_spec=workload_spec_from_wire(payload["workload"]),
        plan=plan,
        noise=from_wire(payload["noise"]),
        contention=from_wire(payload["contention"]),
        repetitions=int(payload["repetitions"]),
        seed=int(payload["seed"]),
        engine=str(payload["engine"]),
    )


def configs_to_wire(configs) -> list:
    """Encode a sequence of configuration points (name -> value)."""
    return [
        sorted((str(k), float(v)) for k, v in config.items())
        for config in configs
    ]


def configs_from_wire(payload) -> list[dict[str, float]]:
    """Inverse of :func:`configs_to_wire`."""
    return [
        {str(name): float(value) for name, value in entries}
        for entries in payload
    ]


def capability_to_wire(
    worker: str,
    supports_batch: bool = True,
    lanes_per_sec: "float | None" = None,
) -> dict:
    """Encode a worker's claim envelope: identity plus capability.

    Additive to protocol v1 — brokers that predate capability claims
    simply ignore the extra keys, and :func:`capability_from_wire`
    defaults them for old workers, so mixed fleets interoperate.
    """
    return {
        "worker": str(worker),
        "supports_batch": bool(supports_batch),
        "lanes_per_sec": (
            float(lanes_per_sec) if lanes_per_sec is not None else None
        ),
    }


def capability_from_wire(body: Mapping) -> "tuple[str, bool, float | None]":
    """Inverse of :func:`capability_to_wire`; missing keys get defaults."""
    rate = body.get("lanes_per_sec")
    return (
        str(body.get("worker", "")),
        bool(body.get("supports_batch", True)),
        float(rate) if rate is not None else None,
    )
