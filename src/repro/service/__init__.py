"""Distributed campaign service: broker, workers, shared artifact cache.

The measurement campaigns of the paper are embarrassingly parallel
(every design configuration is an independent profiled run), and every
stage artifact is already content-addressed by a sha256 fingerprint.
This package promotes those two facts into a service:

* :mod:`~repro.service.protocol` — the versioned JSON wire protocol:
  :class:`~repro.measure.parallel.WorkloadSpec` recipes and per-stage /
  per-run fingerprints *are* the message format;
* :mod:`~repro.service.broker` — splits the measure stage into leases,
  hands them to workers, re-queues them on worker death or timeout, and
  merges results in deterministic design order (bit-identical to the
  single-process runners for any worker count or failure schedule);
* :mod:`~repro.service.worker` — pulls leases and executes them, routing
  batch-capable engines to whole-chunk tensor passes;
* :mod:`~repro.service.remote_store` — the content-addressed artifact
  store and run cache behind ``get``/``put``/``has`` HTTP endpoints, so
  concurrent campaigns from many clients dedupe work fleet-wide;
* :mod:`~repro.service.server` — the long-lived campaign server
  (stdlib ``http.server`` + threads): submit a spec, poll per-stage
  status and provenance, fetch artifacts;
* :mod:`~repro.service.journal` — the durable, hash-chained journal of
  campaign transitions and broker checkpoints that makes a server
  restart a **replay** (store resume re-executes nothing that
  finished);
* :mod:`~repro.service.retry` — the one shared retry/backoff policy
  (bounded exponential, deterministic keyed jitter) every client path
  funnels through.

Everything is stdlib-only (sockets, ``http.server``, threads); the CLI
front doors are ``repro serve``, ``repro worker``, ``repro submit``, and
``repro status``.
"""

from .broker import Broker, BrokerScheduler, Lease, MeasureJob, measure_job_key
from .journal import CampaignHistory, ServiceJournal
from .protocol import (
    PROTOCOL_VERSION,
    capability_from_wire,
    capability_to_wire,
    envelope,
    from_wire,
    measure_task_from_wire,
    measure_task_to_wire,
    open_envelope,
    to_wire,
    workload_spec_from_wire,
    workload_spec_to_wire,
)
from .remote_store import (
    LocalStore,
    RemoteRunCache,
    RemoteStore,
    SharedWorkspace,
)
from .retry import DEFAULT_RETRY_POLICY, RetryPolicy, retry_call
from .server import CampaignService, ServiceClient, serve
from .worker import HttpBrokerTransport, LocalBrokerTransport, Worker

__all__ = [
    "DEFAULT_RETRY_POLICY",
    "PROTOCOL_VERSION",
    "Broker",
    "BrokerScheduler",
    "CampaignHistory",
    "CampaignService",
    "HttpBrokerTransport",
    "Lease",
    "LocalBrokerTransport",
    "LocalStore",
    "MeasureJob",
    "RemoteRunCache",
    "RemoteStore",
    "RetryPolicy",
    "ServiceClient",
    "ServiceJournal",
    "SharedWorkspace",
    "Worker",
    "measure_job_key",
    "retry_call",
    "capability_from_wire",
    "capability_to_wire",
    "envelope",
    "from_wire",
    "measure_task_from_wire",
    "measure_task_to_wire",
    "open_envelope",
    "serve",
    "to_wire",
    "workload_spec_from_wire",
    "workload_spec_to_wire",
]
