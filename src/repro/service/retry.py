"""One shared retry/backoff policy for every service client path.

Fleets guarantee transient failure: brokers restart, responses get
dropped mid-socket, proxies garble payloads.  Every HTTP-speaking piece
of the campaign service (:class:`~repro.service.server.ServiceClient`,
:class:`~repro.service.remote_store.RemoteStore`, the worker transport)
funnels its calls through :func:`retry_call` with the same
:class:`RetryPolicy`, so the whole service layer degrades the same way:

* only :class:`~repro.errors.TransientServiceError` is retried —
  connection failures, dropped/garbled responses, HTTP 5xx.  Version
  skew, malformed specs, and unknown campaigns fail immediately.
* backoff is bounded exponential with **deterministic jitter**: the
  jitter stream is seeded from the call's idempotency key, so a given
  (key, attempt) always sleeps the same amount — reproducible both in
  tests and across a fleet re-driving the same fingerprinted work.
* every operation is named by an idempotency key derived from campaign
  or lease fingerprints, and the server side is idempotent under those
  keys (a retried submit returns the original campaign id, a retried
  lease completion is a no-op), so "retried after the server actually
  processed it" is indistinguishable from "retried after a real drop".
* exhaustion raises a typed :class:`~repro.errors.RetryExhausted`
  carrying the per-attempt trace.

Policy knobs are also readable from the environment
(:meth:`RetryPolicy.from_env`): ``REPRO_SERVICE_RETRY_ATTEMPTS``,
``REPRO_SERVICE_RETRY_BASE_DELAY``, ``REPRO_SERVICE_RETRY_MAX_DELAY``.
"""

from __future__ import annotations

import hashlib
import os
import random
import time
from dataclasses import dataclass
from typing import Callable

from ..errors import RetryExhausted, TransientServiceError

#: Environment knobs for the default policy.
ATTEMPTS_ENV = "REPRO_SERVICE_RETRY_ATTEMPTS"
BASE_DELAY_ENV = "REPRO_SERVICE_RETRY_BASE_DELAY"
MAX_DELAY_ENV = "REPRO_SERVICE_RETRY_MAX_DELAY"


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic, keyed jitter."""

    #: Total attempts (the first call plus retries).
    max_attempts: int = 4
    #: Backoff before the second attempt; doubles per further attempt.
    base_delay: float = 0.05
    #: Ceiling on any single backoff.
    max_delay: float = 2.0
    #: Jitter fraction: each backoff is scaled by a factor drawn
    #: uniformly from ``[1 - jitter, 1 + jitter]``.
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if not 0 <= self.jitter < 1:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")

    @classmethod
    def from_env(cls, **overrides) -> "RetryPolicy":
        """The default policy, with environment knobs applied."""
        attempts = os.environ.get(ATTEMPTS_ENV)
        base = os.environ.get(BASE_DELAY_ENV)
        ceiling = os.environ.get(MAX_DELAY_ENV)
        kwargs = dict(overrides)
        if attempts is not None and "max_attempts" not in kwargs:
            kwargs["max_attempts"] = int(attempts)
        if base is not None and "base_delay" not in kwargs:
            kwargs["base_delay"] = float(base)
        if ceiling is not None and "max_delay" not in kwargs:
            kwargs["max_delay"] = float(ceiling)
        return cls(**kwargs)

    def backoffs(self, key: str) -> list[float]:
        """The deterministic backoff schedule for *key*.

        One entry per retry (``max_attempts - 1`` in total).  The jitter
        stream is seeded from sha256 of the key, so the schedule is a
        pure function of (policy, key) — two processes retrying the same
        fingerprinted operation sleep identically.
        """
        seed = int.from_bytes(
            hashlib.sha256(key.encode()).digest()[:8], "big"
        )
        rng = random.Random(seed)
        schedule = []
        for attempt in range(self.max_attempts - 1):
            delay = min(self.max_delay, self.base_delay * (2.0 ** attempt))
            factor = 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
            schedule.append(delay * factor)
        return schedule


#: Retry policy used when a client is built without an explicit one.
DEFAULT_RETRY_POLICY = RetryPolicy()


def retry_call(
    fn: Callable,
    *,
    key: str,
    policy: "RetryPolicy | None" = None,
    sleep: Callable[[float], None] = time.sleep,
):
    """Call *fn* under *policy*, retrying transient failures.

    *key* is the operation's idempotency key (campaign/lease/store
    fingerprints); it seeds the jitter stream and names the operation in
    the :class:`~repro.errors.RetryExhausted` trace.  Non-transient
    errors propagate immediately, untouched.
    """
    policy = policy or DEFAULT_RETRY_POLICY
    backoffs = policy.backoffs(key)
    trace: list[dict] = []
    last: "TransientServiceError | None" = None
    for attempt in range(policy.max_attempts):
        try:
            return fn()
        except TransientServiceError as exc:
            last = exc
            backoff = backoffs[attempt] if attempt < len(backoffs) else None
            trace.append(
                {
                    "attempt": attempt + 1,
                    "error": f"{type(exc).__name__}: {exc}",
                    "backoff": round(backoff, 4)
                    if backoff is not None
                    else None,
                }
            )
            if backoff is None:
                break
            sleep(backoff)
    raise RetryExhausted(key, attempts=trace, detail=str(last)) from last
