"""The durable service journal: crash-safe campaign + lease state.

The campaign service's design premise is that **the artifact store is
the source of truth** — every stage artifact and every profiled run
lands in the content-addressed store the moment it exists, under
fingerprints that are pure functions of the spec.  What a crash of
``repro serve`` loses is therefore never *results*, only *intent*: which
campaigns were accepted, how far each had progressed, which measure
leases were outstanding.  This module persists exactly that intent, so
recovery is a **replay** (resubmit the journaled specs and let store
resume skip everything already computed), not a loss.

Layout — all entries live in a :class:`~repro.service.remote_store.LocalStore`
(atomic temp-file + rename writes; corrupt entries are quarantined, not
re-read), under three namespaces:

* ``campaigns`` — append-only, hash-chained per-campaign entries.  Each
  :class:`_CampaignRecord <repro.service.server._CampaignRecord>`
  transition (``accepted`` → per-stage ``stage`` events → ``done`` /
  ``failed``, plus ``recovered`` markers) is one entry keyed
  ``<campaign id>-<seq>``, fingerprinted over its content **and the
  previous entry's fingerprint** — a torn or tampered tail is detected
  and the replay stops at the last verifiable entry instead of
  propagating garbage.
* ``broker`` — per-measure-job checkpoints (merged design indices and
  accounting), keyed by the job's content fingerprint, so a restarted
  broker can tell the recovered prefix from the unfinished tail it must
  re-lease.
* ``meta`` — the server incarnation counter (how many times a service
  was started on this state directory; ``restarts = incarnation - 1``).

Everything here is deliberately small, synchronous, and atomic: one
journal write per state transition, each a single ``os.replace``.
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import dataclass, field
from typing import Mapping

from .remote_store import LocalStore

#: Store namespace holding the append-only campaign journal entries.
CAMPAIGN_NAMESPACE = "campaigns"
#: Store namespace holding per-measure-job broker checkpoints.
BROKER_NAMESPACE = "broker"
#: Store namespace holding journal metadata (incarnation counter).
META_NAMESPACE = "meta"

#: Events a campaign journal entry may carry, in lifecycle order.
CAMPAIGN_EVENTS = (
    "accepted",   # spec + idempotency token; the campaign exists
    "stage",      # one stage transition (running/computed/resumed/failed)
    "recovered",  # a restarted server re-drove this campaign
    "done",       # terminal: fingerprints + provenance
    "failed",     # terminal: error text
)


def _entry_fingerprint(content: Mapping) -> str:
    """Content hash of one journal entry (chain link included)."""
    canonical = json.dumps(content, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


@dataclass
class CampaignHistory:
    """One campaign's state, folded from its verified journal entries."""

    campaign_id: str
    spec: dict = field(default_factory=dict)
    #: Idempotency token the submit carried (retried submits map here).
    token: "str | None" = None
    state: str = "queued"  # queued | running | done | failed
    stage_states: dict = field(default_factory=dict)
    fingerprints: dict = field(default_factory=dict)
    error: "str | None" = None
    profile_executions: "int | None" = None
    stats_line: "str | None" = None
    #: How many times a restarted server re-drove this campaign.
    restarts: int = 0
    #: Highest verified entry sequence number.
    last_seq: int = -1
    #: Fingerprint of the last verified entry (the chain head).
    last_fingerprint: "str | None" = None

    @property
    def terminal(self) -> bool:
        return self.state in ("done", "failed")

    def apply(self, entry: Mapping) -> None:
        """Fold one verified entry into this history."""
        event = entry.get("event")
        data = entry.get("data") or {}
        if event == "accepted":
            self.spec = dict(data.get("spec") or {})
            token = data.get("token")
            self.token = str(token) if token else None
            self.state = "queued"
        elif event == "stage":
            name = str(data.get("stage"))
            self.stage_states[name] = str(data.get("status"))
            fingerprint = data.get("fingerprint")
            if fingerprint:
                self.fingerprints[name] = str(fingerprint)
            self.state = "running"
        elif event == "recovered":
            self.restarts += 1
            self.state = "running"
        elif event == "done":
            self.state = "done"
            self.profile_executions = data.get("profile_executions")
            self.stats_line = data.get("stats_line")
            for name, fingerprint in (data.get("fingerprints") or {}).items():
                self.fingerprints[str(name)] = str(fingerprint)
        elif event == "failed":
            self.state = "failed"
            self.error = str(data.get("error") or "")


class ServiceJournal:
    """Durable, append-only journal over a :class:`LocalStore`.

    Thread-safe: the campaign server appends from per-campaign threads
    and HTTP handler threads; each append is one atomic store write.
    """

    def __init__(self, store: LocalStore) -> None:
        self.store = store
        self._lock = threading.Lock()
        #: campaign id -> (next seq, previous fingerprint); loaded
        #: lazily from the journal so appends continue the chain after
        #: a restart.
        self._chains: dict[str, tuple[int, "str | None"]] = {}
        #: Entries that failed chain/shape verification during replay.
        self.corrupt_entries = 0

    # -- campaign entries --------------------------------------------------

    def record(self, campaign_id: str, event: str, data: Mapping) -> None:
        """Append one fingerprinted entry to *campaign_id*'s chain."""
        if event not in CAMPAIGN_EVENTS:
            raise ValueError(
                f"unknown journal event {event!r} "
                f"(events: {', '.join(CAMPAIGN_EVENTS)})"
            )
        with self._lock:
            seq, prev = self._chains.get(campaign_id, (0, None))
            content = {
                "campaign": str(campaign_id),
                "seq": seq,
                "event": event,
                "data": _jsonable(data),
                "prev": prev,
            }
            entry = dict(content)
            entry["fingerprint"] = _entry_fingerprint(content)
            self.store.put(
                CAMPAIGN_NAMESPACE, f"{campaign_id}-{seq:06d}", entry
            )
            self._chains[campaign_id] = (seq + 1, entry["fingerprint"])

    def replay(self) -> dict[str, CampaignHistory]:
        """Fold the journal into per-campaign histories.

        Entries are verified in sequence order: an entry whose
        fingerprint or chain link does not match (torn write survivor,
        tampering, a skipped sequence number) ends that campaign's
        verified history — later entries are counted as corrupt and
        ignored, so replay never acts on unverifiable state.  Also
        primes the append chains, so new entries continue each chain.
        """
        grouped: dict[str, list[tuple[int, str]]] = {}
        for key in self.store.keys(CAMPAIGN_NAMESPACE):
            campaign_id, _, seq_text = key.rpartition("-")
            if not campaign_id or not seq_text.isdigit():
                self.corrupt_entries += 1
                continue
            grouped.setdefault(campaign_id, []).append((int(seq_text), key))

        histories: dict[str, CampaignHistory] = {}
        with self._lock:
            for campaign_id in sorted(grouped, key=_campaign_sort_key):
                history = CampaignHistory(campaign_id=campaign_id)
                prev: "str | None" = None
                for seq, key in sorted(grouped[campaign_id]):
                    entry = self.store.get(CAMPAIGN_NAMESPACE, key)
                    if not self._verified(entry, campaign_id, seq, prev):
                        self.corrupt_entries += 1
                        break
                    history.apply(entry)
                    history.last_seq = seq
                    history.last_fingerprint = entry["fingerprint"]
                    prev = entry["fingerprint"]
                if history.last_seq >= 0:
                    histories[campaign_id] = history
                    self._chains[campaign_id] = (
                        history.last_seq + 1,
                        history.last_fingerprint,
                    )
        return histories

    @staticmethod
    def _verified(
        entry: object, campaign_id: str, seq: int, prev: "str | None"
    ) -> bool:
        if not isinstance(entry, Mapping):
            return False
        content = {
            "campaign": entry.get("campaign"),
            "seq": entry.get("seq"),
            "event": entry.get("event"),
            "data": entry.get("data"),
            "prev": entry.get("prev"),
        }
        return (
            entry.get("campaign") == campaign_id
            and entry.get("seq") == seq
            and entry.get("prev") == prev
            and entry.get("event") in CAMPAIGN_EVENTS
            and entry.get("fingerprint") == _entry_fingerprint(content)
        )

    # -- broker checkpoints ------------------------------------------------

    def checkpoint_job(self, job_key: str, state: Mapping) -> None:
        """Persist one measure job's merge progress (last write wins)."""
        self.store.put(BROKER_NAMESPACE, job_key, _jsonable(state))

    def job_checkpoint(self, job_key: str) -> "dict | None":
        """The last persisted checkpoint for *job_key*, if any."""
        payload = self.store.get(BROKER_NAMESPACE, job_key)
        return dict(payload) if isinstance(payload, Mapping) else None

    def clear_job(self, job_key: str) -> None:
        """Forget a finished job's checkpoint (an empty tombstone)."""
        self.store.put(BROKER_NAMESPACE, job_key, {"done": True})

    # -- incarnations ------------------------------------------------------

    def incarnation(self) -> int:
        """How many times a service has started on this journal."""
        payload = self.store.get(META_NAMESPACE, "incarnation")
        if isinstance(payload, Mapping):
            try:
                return max(0, int(payload.get("count", 0)))
            except (TypeError, ValueError):
                return 0
        return 0

    def bump_incarnation(self) -> int:
        """Record one more service start; returns the new count."""
        with self._lock:
            count = self.incarnation() + 1
            self.store.put(META_NAMESPACE, "incarnation", {"count": count})
        return count


def _campaign_sort_key(campaign_id: str) -> tuple:
    """Numeric-aware ordering for ids like ``C10`` (after ``C9``)."""
    head = campaign_id.rstrip("0123456789")
    tail = campaign_id[len(head):]
    return (head, int(tail) if tail else -1)


def _jsonable(value):
    """Round-trip *value* through JSON semantics (fail fast on junk)."""
    return json.loads(json.dumps(value))
