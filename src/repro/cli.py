"""Command-line interface: ``python -m repro <command> ...``.

Commands mirror the pipeline stages on the registered workloads:

* ``analyze <app>`` — static + taint analysis, Table 2/3 style report;
* ``taint --app <app>`` — the taint stage alone, with a deterministic
  report fingerprint for cross-engine comparison;
* ``model <app> --values p=27,64 size=10,20`` — full pipeline with models;
* ``run <spec.toml>`` — a declarative campaign with a persistent,
  resumable artifact workspace;
* ``apps`` / ``stages`` — list registered workloads and pipeline stages;
* ``engines`` — list registered execution engines with their capability
  flags (``supports_taint``, ``supports_batch``);
* ``contention <app> --r 2,4,8,16`` — ranks-per-node study (C1);
* ``segments <app> --p 4,8,32`` — branch-direction validation (C2);
* ``sweep <app> --values p=2,4 s=4,8 --jobs 4`` — measurement stage only,
  fanned out over worker processes with an optional on-disk run cache;
* ``serve --store DIR`` / ``worker --server URL`` / ``submit <spec.toml>
  --server URL`` / ``status <id> --server URL`` — the distributed
  campaign service: a long-lived server owning the shared artifact
  store, workers pulling measure-stage leases over HTTP, and clients
  submitting campaign specs and polling per-stage provenance (see
  :mod:`repro.service`).

``<app>`` is any registered workload — the bundled ``lulesh``, ``milc``
and ``synthetic``, plus anything user code registers via
:func:`repro.registry.register_workload` before invoking :func:`main`.
``model`` and ``sweep`` take ``--jobs N`` to parallelize the instrumented
experiments and ``--cache-dir DIR`` to reuse already-measured
configurations across invocations; results are bit-identical for every
jobs count.  Measurement commands take ``--engine`` to pick a registered
execution engine (default: ``compiled``, the IR-to-closure compiler;
``vectorized`` runs the whole sweep as tensor batches, bit-identically);
``taint``/``run``/``model`` take ``--taint-engine`` to pick the engine
executing the dynamic taint stage (default ``compiled`` as well) — the
built-in engines are bit-identical in both roles.  ``run``/``model``
take ``--search-backend`` to pick the model-search backend (default
``batched``, one stacked-LAPACK call per hypothesis class; ``loop`` is
the per-hypothesis reference — both select identical models).
Everything prints
plain text; the same functionality is available programmatically via
:mod:`repro.api`.
"""

from __future__ import annotations

import argparse
import sys
import threading
import time
from typing import Sequence

from .core.pipeline import PerfTaintPipeline
from .core.classify import table3_counts
from .core.report import render_summary, render_table2, render_table3
from .core.stages import STAGES, Campaign
from .core.validation import detect_segmented_behavior
from .errors import ReproError
from .interp import (
    DEFAULT_MEASUREMENT_ENGINE,
    DEFAULT_TAINT_ENGINE,
    shadow_capable_engines,
)
from .libdb import MPI_DATABASE
from .measure.instrumentation import InstrumentationMode
from .measure.profiler import APP_KEY
from .mpisim.contention import LogQuadraticContention
from .registry import (
    ENGINE_REGISTRY,
    MODEL_BACKEND_REGISTRY,
    WORKLOAD_REGISTRY,
    load_builtin_components,
)


def _workload(name: str, parameters: tuple[str, ...] | None = None):
    """Build the registered workload *name*.

    Unknown names exit with a one-line error listing every registered
    app — including apps registered by user code, not a frozen literal
    list.
    """
    try:
        factory = WORKLOAD_REGISTRY.get(name)
    except ReproError:
        raise SystemExit(
            f"error: unknown app '{name}' "
            f"(valid apps: {', '.join(WORKLOAD_REGISTRY.names())})"
        ) from None
    return factory(parameters=parameters) if parameters else factory()


def _check_app_supports(workload, config: dict, app: str) -> None:
    """Exit with a one-line error when *workload* cannot run *config*.

    With app names validated against the live registry (not argparse
    ``choices``), a command's hard-coded inputs may not exist on every
    registered workload — probe the setup instead of letting a raw
    ``KeyError`` escape mid-run.
    """
    try:
        workload.setup(dict(config))
    except KeyError as exc:
        raise SystemExit(
            f"error: app '{app}' does not support this command: "
            f"the workload needs an input {exc.args[0]!r} that the "
            f"command's configuration does not provide"
        ) from None


def _table_params(workload, name: str) -> list[str]:
    """Table 3 rows: the registered parameter list, or the workload's
    annotated parameters plus the implicit ``p``."""
    params = WORKLOAD_REGISTRY.entry(name).metadata.get("params")
    if params:
        return list(params)
    annotated = getattr(workload, "annotated", None)
    if annotated:
        return ["p", *annotated]
    return list(workload.parameters)


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got '{text}'")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _cache_dir(text: str) -> str:
    import pathlib

    path = pathlib.Path(text)
    if path.exists() and not path.is_dir():
        raise argparse.ArgumentTypeError(
            f"'{text}' exists and is not a directory"
        )
    return text


def _parse_values(pairs: Sequence[str]) -> dict[str, list[float]]:
    out: dict[str, list[float]] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"expected name=v1,v2,... got '{pair}'")
        name, values = pair.split("=", 1)
        out[name] = [float(v) for v in values.split(",") if v]
        if not out[name]:
            raise SystemExit(f"no values for parameter '{name}'")
    return out


def cmd_analyze(args: argparse.Namespace) -> int:
    workload = _workload(args.app)
    pipeline = PerfTaintPipeline(workload=workload)
    static, taint, volumes, deps, classification = pipeline.analyze()
    print(render_table2(args.app.upper(), classification))
    print()
    print(
        render_table3(
            args.app.upper(),
            table3_counts(
                workload.program(), taint, _table_params(workload, args.app)
            ),
        )
    )
    if taint.warnings:
        print("\nWarnings:")
        for w in taint.warnings:
            print(f"  * {w}")
    return 0


def cmd_taint(args: argparse.Namespace) -> int:
    from .core.artifacts import artifact_fingerprint, taint_report_to_dict

    workload = _workload(args.app)
    pipeline = PerfTaintPipeline(
        workload=workload, taint_engine=args.taint_engine
    )
    taint = pipeline.analyze_taint()
    print(f"taint analysis of '{args.app}' (engine: {args.taint_engine})")
    print(f"  parameters:         {', '.join(taint.parameters) or '-'}")
    print(f"  executed functions: {len(taint.executed_functions)}")
    print(
        f"  loop records:       {len(taint.loop_records)} "
        f"({len(taint.relevant_loops())} parameter-dependent)"
    )
    print(f"  branch records:     {len(taint.branch_records)}")
    print(f"  library records:    {len(taint.library_records)}")
    # Content fingerprint of the canonical report payload: identical
    # across engines by construction — compare `--taint-engine tree`
    # against `--taint-engine compiled` to verify on any workload.
    print(
        "  report fingerprint: "
        f"{artifact_fingerprint(taint_report_to_dict(taint))}"
    )
    if taint.warnings:
        print("warnings:")
        for w in taint.warnings:
            print(f"  * {w}")
    return 0


def cmd_model(args: argparse.Namespace) -> int:
    values = _parse_values(args.values)
    workload = _workload(args.app, tuple(values))
    _check_app_supports(
        workload, {name: vals[0] for name, vals in values.items()}, args.app
    )
    pipeline = PerfTaintPipeline(
        workload=workload,
        repetitions=args.repetitions,
        seed=args.seed,
        n_jobs=args.jobs,
        cache_dir=args.cache_dir,
        engine=args.engine,
        taint_engine=args.taint_engine,
        model_backend=args.search_backend,
    )
    result = pipeline.run(
        values,
        mode=InstrumentationMode(args.mode),
        compare_black_box=args.compare,
    )
    print(render_summary(args.app.upper(), result))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    campaign = Campaign.from_toml(args.spec, workspace=args.workspace)
    if args.jobs is not None:
        campaign.n_jobs = args.jobs
    if args.taint_engine is not None:
        campaign.taint_engine = args.taint_engine
    if args.search_backend is not None:
        campaign.model_backend = args.search_backend
    started = time.perf_counter()
    result = campaign.run()
    elapsed = time.perf_counter() - started
    name = getattr(campaign.workload, "name", "campaign")
    print(render_summary(str(name).upper(), result))
    print()
    for stage_name, how in campaign.stage_stats.items():
        print(f"  {stage_name:<9} {how}")
    lanes = campaign.measure_telemetry.get("lanes")
    if lanes:
        print(
            f"  lanes     {lanes['planned']} planned, "
            f"{lanes['executed']} executed, "
            f"{lanes['deduped']} deduplicated"
        )
    print(f"{campaign.stats_line()} in {elapsed:.2f}s")
    if campaign.workspace is not None:
        print(f"workspace: {campaign.workspace.root}")
    return 0


def cmd_apps(args: argparse.Namespace) -> int:
    for entry in WORKLOAD_REGISTRY:
        params = entry.metadata.get("params")
        extra = f"  (parameters: {', '.join(params)})" if params else ""
        print(f"{entry.name:<12} {entry.description}{extra}")
    return 0


def cmd_engines(args: argparse.Namespace) -> int:
    for entry in ENGINE_REGISTRY:
        flags = [
            name
            for name in ("supports_taint", "supports_batch")
            if entry.metadata.get(name)
        ]
        extra = f"  [{', '.join(flags)}]" if flags else ""
        print(f"{entry.name:<12} {entry.description}{extra}")
    return 0


def cmd_stages(args: argparse.Namespace) -> int:
    for stage in STAGES.values():
        inputs = ", ".join(stage.inputs) if stage.inputs else "-"
        print(f"{stage.name:<9} <- {inputs:<24} {stage.description}")
    return 0


def cmd_contention(args: argparse.Namespace) -> int:
    workload = _workload(args.app, ("r",))
    _check_app_supports(
        workload, {"r": 2.0, "p": args.p, "size": args.size}, args.app
    )
    pipeline = PerfTaintPipeline(
        workload=workload,
        repetitions=args.repetitions,
        seed=args.seed,
        contention=LogQuadraticContention(beta=args.beta),
        engine=args.engine,
    )
    static, taint, volumes, deps, _ = pipeline.analyze()
    plan = pipeline.plan_for(InstrumentationMode.TAINT_FILTER, taint, static)
    design = [
        {"r": r, "p": args.p, "size": args.size}
        for r in [float(v) for v in args.r.split(",")]
    ]
    meas, _ = pipeline.measure(design, plan)
    models = pipeline.model(meas, taint, volumes, compare_black_box=True)
    findings = pipeline.validate(meas, models, taint)
    if APP_KEY not in models:
        raise SystemExit(
            "error: no whole-application model could be fitted "
            "(all measurements failed the noise screen)"
        )
    app_model = models[APP_KEY].black_box or models[APP_KEY].hybrid
    print(f"application model over r: {app_model.format()}")
    print(f"contention findings: {len(findings)}")
    for f in findings:
        print(f"  ! {f}")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    from .measure.batched import BatchedExperimentRunner
    from .measure.experiment import full_factorial
    from .measure.instrumentation import full_plan
    from .measure.parallel import ParallelExperimentRunner

    values = _parse_values(args.values)
    workload = _workload(args.app, tuple(values))
    design = full_factorial(values)
    _check_app_supports(workload, design[0], args.app)
    if ENGINE_REGISTRY.entry(args.engine).metadata.get("supports_batch"):
        runner_cls = BatchedExperimentRunner  # batch-axis sharding
    else:
        runner_cls = ParallelExperimentRunner
    runner = runner_cls(
        workload=workload,
        plan=full_plan(workload.program()),
        repetitions=args.repetitions,
        seed=args.seed,
        n_jobs=args.jobs,
        cache_dir=args.cache_dir,
        engine=args.engine,
    )
    started = time.perf_counter()
    measurements, profiles = runner.run(design)
    elapsed = time.perf_counter() - started
    samples = sum(
        len(v) for per_fn in measurements.data.values() for v in per_fn.values()
    )
    print(
        f"swept {len(design)} configurations "
        f"({runner.last_stats.executed} executed, "
        f"{runner.last_stats.cached} from cache) "
        f"with {args.jobs} job(s) in {elapsed:.2f}s"
    )
    lane_stats = getattr(runner, "last_lane_stats", None)
    if lane_stats is not None and lane_stats.planned:
        print(
            f"lanes: {lane_stats.planned} planned "
            f"(configurations x repetitions), "
            f"{lane_stats.executed} executed, "
            f"{lane_stats.deduped} deduplicated"
        )
    print(
        f"collected {samples} measurements over "
        f"{len(measurements.functions())} functions"
    )
    if args.output:
        from .measure.io import save_measurements

        save_measurements(measurements, args.output)
        print(f"wrote {args.output}")
    return 0


def cmd_segments(args: argparse.Namespace) -> int:
    workload = _workload(args.app)
    configs = [
        {"p": float(p), "size": args.size}
        for p in args.p.split(",")
    ]
    _check_app_supports(workload, configs[0], args.app)
    findings = detect_segmented_behavior(
        workload.program(),
        configs,
        workload.setup,
        workload.sources(),
        library_taint=MPI_DATABASE,
    )
    if not findings:
        print("no qualitative behavior changes detected")
    for f in findings:
        print(
            f"! {f.function} branch {f.branch_id} "
            f"(depends on {sorted(f.params)}): {f.boundary()}"
        )
    return 0


def _load_spec_file(path: str) -> dict:
    """Load a campaign spec mapping from a TOML (or JSON) file."""
    import json
    import pathlib

    if pathlib.Path(path).suffix.lower() == ".json":
        try:
            with open(path) as handle:
                data = json.load(handle)
        except OSError as exc:
            raise SystemExit(f"error: cannot read spec file '{path}': {exc}")
        except ValueError as exc:
            raise SystemExit(
                f"error: spec file '{path}' is not valid JSON: {exc}"
            )
    else:
        try:
            import tomllib
        except ModuleNotFoundError:  # Python < 3.11
            raise SystemExit(
                "error: reading TOML specs needs Python >= 3.11; "
                "submit a JSON spec instead"
            ) from None
        try:
            with open(path, "rb") as handle:
                data = tomllib.load(handle)
        except OSError as exc:
            raise SystemExit(f"error: cannot read spec file '{path}': {exc}")
        except tomllib.TOMLDecodeError as exc:
            raise SystemExit(
                f"error: spec file '{path}' is not valid TOML: {exc}"
            )
    if not isinstance(data, dict):
        raise SystemExit(
            f"error: spec file '{path}' must contain a mapping"
        )
    return data


def _print_campaign_status(status: dict) -> None:
    print(f"campaign {status.get('id')}: {status.get('state')}")
    if status.get("recovered"):
        restarts = status.get("restarts", 0)
        detail = (
            f"re-driven across {restarts} server restart(s)"
            if restarts
            else "restored from the journal after a server restart"
        )
        print(f"recovered: true ({detail})")
    for stage_name, how in status.get("stages", {}).items():
        print(f"  {stage_name:<9} {how}")
    if status.get("profile_executions") is not None:
        print(f"profile executions: {status['profile_executions']}")
    if status.get("stats_line"):
        print(status["stats_line"])
    if status.get("error"):
        print(f"error: {status['error']}")


def cmd_serve(args: argparse.Namespace) -> int:
    import signal

    from .service import serve

    store = args.state_dir if args.state_dir is not None else args.store
    if store is None:
        raise SystemExit(
            "error: repro serve needs --state-dir DIR (or the legacy "
            "--store DIR) — the directory holding the shared store and "
            "crash-recovery journal"
        )
    httpd = serve(
        store,
        host=args.host,
        port=args.port,
        lease_ttl=args.lease_ttl,
        max_attempts=args.max_attempts,
        chunk_size=args.chunk_size,
        verbose=args.verbose,
        target_lease_seconds=args.target_lease_seconds,
        journal=not args.no_journal,
    )
    host, port = httpd.server_address[:2]
    restarts = getattr(httpd.service, "restarts", 0)
    print(f"campaign server on http://{host}:{port} (state: {store})")
    if restarts:
        print(
            f"recovered state from {store} "
            f"(restart #{restarts} on this state directory)"
        )
    print("submit campaigns with: repro submit <spec> --server "
          f"http://{host}:{port}")
    print("attach workers with:   repro worker --server "
          f"http://{host}:{port}")

    def _drain_and_stop(signum, frame):  # pragma: no cover - signal path
        # Drain on a helper thread: httpd.shutdown() deadlocks when
        # called from the serve_forever thread a signal interrupted.
        def drain():
            clean = httpd.service.drain(timeout=args.drain_timeout)
            print(
                "drained clean, shutting down"
                if clean
                else "drain timed out with leases in flight, shutting down"
            )
            httpd.shutdown()

        threading.Thread(target=drain, daemon=True).start()

    try:
        signal.signal(signal.SIGTERM, _drain_and_stop)
    except ValueError:  # pragma: no cover - non-main thread (tests)
        pass
    try:
        httpd.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        httpd.server_close()
    return 0


def cmd_worker(args: argparse.Namespace) -> int:
    from .service import HttpBrokerTransport, Worker

    worker = Worker(
        HttpBrokerTransport(args.server),
        worker_id=args.id,
        poll_interval=args.poll_interval,
        max_leases=args.max_leases,
        stop_when_idle=args.stop_when_idle,
        idle_timeout=args.idle_timeout,
        batch=not args.no_batch,
        reconnect_timeout=args.reconnect_timeout,
    )
    print(f"worker '{args.id}' pulling leases from {args.server}")
    try:
        stats = worker.run()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        return 0
    if stats.fatal_error is not None:
        print(f"worker '{args.id}' fatal: {stats.fatal_error}")
        return 1
    reconnect_text = (
        f", {stats.reconnects} reconnect(s)" if stats.reconnects else ""
    )
    print(
        f"worker '{args.id}' done: {stats.completed} lease(s) completed "
        f"({stats.configurations} configuration(s)), "
        f"{stats.failed} failed{reconnect_text}"
    )
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    from .service import ServiceClient

    spec = _load_spec_file(args.spec)
    client = ServiceClient(args.server)
    campaign_id = client.submit(spec)
    print(f"submitted campaign {campaign_id} to {args.server}")
    if args.no_wait:
        print(f"poll with: repro status {campaign_id} --server {args.server}")
        return 0
    status = client.wait(campaign_id, timeout=args.timeout)
    _print_campaign_status(status)
    return 0 if status.get("state") == "done" else 1


def _print_telemetry(telemetry: dict) -> None:
    workers = telemetry.get("workers") or []
    leases = telemetry.get("leases") or []
    print(f"workers ({len(workers)}):")
    for w in workers:
        rate = w.get("lanes_per_sec")
        rate_text = f"{rate:g} lanes/s" if rate is not None else "rate unknown"
        mode = "batch" if w.get("supports_batch") else "scalar"
        quarantine_text = " [QUARANTINED]" if w.get("quarantined") else ""
        print(
            f"  {w.get('worker'):<12} {mode:<6} {rate_text:<16} "
            f"{w.get('leases_completed')} lease(s), "
            f"{w.get('lanes_completed')} lane(s)"
            f"{quarantine_text}"
        )
    print(f"leases ({len(leases)}):")
    for r in leases:
        seconds = r.get("seconds")
        timing = f"{seconds:.3f}s" if seconds is not None else "-"
        splits = r.get("splits") or 0
        split_text = f", {splits} split(s)" if splits else ""
        print(
            f"  {r.get('lease'):<6} {r.get('job'):<5} "
            f"{str(r.get('worker')):<12} {r.get('status'):<9} "
            f"{r.get('configurations')} cfg(s), "
            f"attempt {r.get('attempt')}, {timing}{split_text}"
        )
    store = telemetry.get("store")
    if store is not None:
        print(
            f"store: {store.get('corrupt_entries', 0)} corrupt "
            "entr(y/ies) quarantined"
        )
    service = telemetry.get("service")
    if service is not None:
        recovered = service.get("recovered_campaigns") or []
        recovered_text = (
            f", recovered campaigns: {', '.join(recovered)}"
            if recovered
            else ""
        )
        print(
            f"service: {service.get('restarts', 0)} restart(s), "
            f"{service.get('journal_corrupt_entries', 0)} corrupt "
            f"journal entr(y/ies){recovered_text}"
        )


def cmd_status(args: argparse.Namespace) -> int:
    from .service import ServiceClient

    client = ServiceClient(args.server)
    status = client.status(args.id)
    _print_campaign_status(status)
    if args.telemetry:
        print()
        _print_telemetry(client.telemetry())
    return 0


def _add_server_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--server",
        default="http://127.0.0.1:8642",
        help="campaign server URL (default: %(default)s)",
    )


def _add_engine_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engine",
        default=DEFAULT_MEASUREMENT_ENGINE,
        choices=ENGINE_REGISTRY.names(),
        help="execution engine for the measurement stage; the built-in "
        "engines produce bit-identical results",
    )


def _add_taint_engine_arg(
    parser: argparse.ArgumentParser, default: "str | None" = DEFAULT_TAINT_ENGINE
) -> None:
    parser.add_argument(
        "--taint-engine",
        default=default,
        choices=shadow_capable_engines(),
        help="execution engine for the dynamic taint stage (engines "
        "declaring supports_taint); the built-in engines produce "
        "bit-identical taint reports",
    )


def _add_search_backend_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--search-backend",
        default=None,  # None: keep the modeler's / the spec's choice
        choices=MODEL_BACKEND_REGISTRY.names(),
        help="model-search backend for the model stage (default: batched, "
        "one stacked-LAPACK call per hypothesis class; 'loop' is the "
        "per-hypothesis reference — both select identical models)",
    )


def _add_app_arg(parser: argparse.ArgumentParser) -> None:
    # No argparse ``choices``: validation happens in ``_workload`` against
    # the live registry, so apps registered by user code are accepted and
    # unknown names list the full registered set.
    parser.add_argument(
        "app", help=f"one of: {', '.join(WORKLOAD_REGISTRY.names())}"
    )


def build_parser() -> argparse.ArgumentParser:
    load_builtin_components()
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Perf-Taint reproduction: tainted performance modeling",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("analyze", help="static + taint analysis report")
    _add_app_arg(p)
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser(
        "taint",
        help="run the dynamic taint stage alone (prints a deterministic "
        "report fingerprint for cross-engine comparison)",
    )
    p.add_argument(
        "--app",
        required=True,
        help=f"one of: {', '.join(WORKLOAD_REGISTRY.names())}",
    )
    _add_taint_engine_arg(p)
    p.set_defaults(func=cmd_taint)

    p = sub.add_parser("model", help="run the full modeling pipeline")
    _add_app_arg(p)
    p.add_argument(
        "--values",
        nargs="+",
        required=True,
        metavar="NAME=V1,V2",
        help="parameter value lists, e.g. p=27,64,125 size=10,15,20",
    )
    p.add_argument(
        "--mode",
        default="taint",
        choices=[m.value for m in InstrumentationMode],
    )
    p.add_argument("--repetitions", type=_positive_int, default=5)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--compare", action="store_true", help="also fit black-box models"
    )
    p.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        help="worker processes for the measurement stage",
    )
    p.add_argument(
        "--cache-dir",
        type=_cache_dir,
        default=None,
        help="run-cache directory (reruns skip measured configurations)",
    )
    _add_engine_arg(p)
    _add_taint_engine_arg(p)
    _add_search_backend_arg(p)
    p.set_defaults(func=cmd_model)

    p = sub.add_parser(
        "run",
        help="run a declarative campaign spec (TOML) with resumable "
        "stage artifacts",
    )
    p.add_argument("spec", help="path to a campaign spec file")
    p.add_argument(
        "--workspace",
        type=_cache_dir,
        default=None,
        help="stage-artifact workspace directory (overrides the spec; "
        "reruns resume unchanged stages from it)",
    )
    p.add_argument(
        "--jobs",
        type=_positive_int,
        default=None,
        help="override the spec's worker-process count",
    )
    _add_taint_engine_arg(p, default=None)  # None: keep the spec's choice
    _add_search_backend_arg(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("apps", help="list registered workloads")
    p.set_defaults(func=cmd_apps)

    p = sub.add_parser(
        "engines",
        help="list registered execution engines with capability flags "
        "(supports_taint, supports_batch)",
    )
    p.set_defaults(func=cmd_engines)

    p = sub.add_parser(
        "stages", help="list the campaign stage graph (name <- inputs)"
    )
    p.set_defaults(func=cmd_stages)

    p = sub.add_parser(
        "sweep",
        help="measurement stage only, parallel with an optional run cache",
    )
    _add_app_arg(p)
    p.add_argument(
        "--values",
        nargs="+",
        required=True,
        metavar="NAME=V1,V2",
        help="parameter value lists, e.g. p=2,4 s=4,8",
    )
    p.add_argument("--repetitions", type=_positive_int, default=5)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--jobs", type=_positive_int, default=1)
    p.add_argument("--cache-dir", type=_cache_dir, default=None)
    p.add_argument(
        "--output", default=None, help="write measurements JSON here"
    )
    _add_engine_arg(p)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("contention", help="ranks-per-node study (C1)")
    _add_app_arg(p)
    p.add_argument("--r", default="2,4,8,12,16", help="ranks/node values")
    p.add_argument("--p", type=float, default=64)
    p.add_argument("--size", type=float, default=16)
    p.add_argument("--beta", type=float, default=0.06)
    p.add_argument("--repetitions", type=_positive_int, default=3)
    p.add_argument("--seed", type=int, default=0)
    _add_engine_arg(p)
    p.set_defaults(func=cmd_contention)

    p = sub.add_parser("segments", help="branch-direction validation (C2)")
    _add_app_arg(p)
    p.add_argument("--p", default="4,8,16,32,64", help="rank counts to probe")
    p.add_argument("--size", type=float, default=16)
    p.set_defaults(func=cmd_segments)

    p = sub.add_parser(
        "serve",
        help="run the campaign server (shared artifact store + "
        "measure-stage broker over HTTP)",
    )
    p.add_argument(
        "--state-dir",
        type=_cache_dir,
        default=None,
        help="server state directory: shared store (stage artifacts + "
        "run results) plus the crash-recovery journal — restarting "
        "with the same directory recovers in-flight campaigns",
    )
    p.add_argument(
        "--store",
        type=_cache_dir,
        default=None,
        help="legacy alias for --state-dir",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8642)
    p.add_argument(
        "--no-journal",
        action="store_true",
        help="disable the durable campaign journal (and with it "
        "restart recovery)",
    )
    p.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        help="on SIGTERM, wait up to this many seconds for in-flight "
        "leases to land before shutting down",
    )
    p.add_argument(
        "--lease-ttl",
        type=float,
        default=30.0,
        help="seconds before an unreported lease is re-queued "
        "(crashed-worker recovery)",
    )
    p.add_argument(
        "--max-attempts",
        type=_positive_int,
        default=3,
        help="attempts per lease before the campaign fails",
    )
    p.add_argument(
        "--chunk-size",
        type=_positive_int,
        default=None,
        help="configurations per lease (default: adaptive — sized per "
        "worker from measured lanes/sec)",
    )
    p.add_argument(
        "--target-lease-seconds",
        type=float,
        default=None,
        help="adaptive lease sizing aims each lease at this wall-clock "
        "duration (default: 2.0; ignored with --chunk-size)",
    )
    p.add_argument("--verbose", action="store_true", help="log HTTP requests")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "worker",
        help="pull measure-stage leases from a campaign server and "
        "execute them",
    )
    _add_server_arg(p)
    p.add_argument("--id", default="worker", help="worker name in leases")
    p.add_argument("--poll-interval", type=float, default=0.2)
    p.add_argument(
        "--max-leases",
        type=_positive_int,
        default=None,
        help="exit after completing this many leases",
    )
    p.add_argument(
        "--stop-when-idle",
        action="store_true",
        help="exit when the queue is empty instead of polling",
    )
    p.add_argument(
        "--idle-timeout",
        type=float,
        default=None,
        help="exit after this many idle seconds",
    )
    p.add_argument(
        "--no-batch",
        action="store_true",
        help="execute leases configuration by configuration even on "
        "batch-capable engines (bit-identical; advertises the reduced "
        "capability so the broker sizes leases accordingly)",
    )
    p.add_argument(
        "--reconnect-timeout",
        type=float,
        default=None,
        help="give up after the broker has been unreachable this many "
        "seconds (default: reconnect forever, riding out server "
        "restarts)",
    )
    p.set_defaults(func=cmd_worker)

    p = sub.add_parser(
        "submit",
        help="submit a campaign spec (TOML/JSON) to a campaign server",
    )
    p.add_argument("spec", help="path to a campaign spec file")
    _add_server_arg(p)
    p.add_argument(
        "--no-wait",
        action="store_true",
        help="return immediately after submission instead of polling",
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="max seconds to wait for completion",
    )
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser(
        "status", help="per-stage status/provenance of a submitted campaign"
    )
    p.add_argument("id", help="campaign id returned by submit")
    _add_server_arg(p)
    p.add_argument(
        "--telemetry",
        action="store_true",
        help="also print per-lease timing/attempts and per-worker "
        "rate estimates from the broker",
    )
    p.set_defaults(func=cmd_status)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        raise SystemExit(f"error: {exc}") from exc


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
