"""Command-line interface: ``python -m repro <command> ...``.

Commands mirror the pipeline stages on the bundled workloads:

* ``analyze <app>`` — static + taint analysis, Table 2/3 style report;
* ``model <app> --values p=27,64 size=10,20`` — full pipeline with models;
* ``contention <app> --r 2,4,8,16`` — ranks-per-node study (C1);
* ``segments <app> --p 4,8,32`` — branch-direction validation (C2);
* ``sweep <app> --values p=2,4 s=4,8 --jobs 4`` — measurement stage only,
  fanned out over worker processes with an optional on-disk run cache.

``<app>`` is ``lulesh`` or ``milc`` (``sweep`` also accepts
``synthetic``).  ``model`` and ``sweep`` take ``--jobs N`` to parallelize
the instrumented experiments and ``--cache-dir DIR`` to reuse
already-measured configurations across invocations; results are
bit-identical for every jobs count.  Measurement commands take
``--engine tree|compiled`` to pick the execution engine (default:
``compiled``, the IR-to-closure compiler; the taint stage always runs on
the tree-walker) — both engines are bit-identical too.  Everything
prints plain text; the same functionality is available programmatically
via :class:`repro.core.PerfTaintPipeline`.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from .apps.lulesh import LuleshWorkload
from .apps.milc import MilcWorkload
from .apps.synthetic import make_scaling_workload
from .core.classify import table3_counts
from .core.pipeline import PerfTaintPipeline
from .core.report import render_summary, render_table2, render_table3
from .core.validation import detect_segmented_behavior
from .interp import DEFAULT_MEASUREMENT_ENGINE, ENGINES
from .libdb import MPI_DATABASE
from .measure.instrumentation import InstrumentationMode
from .measure.profiler import APP_KEY
from .mpisim.contention import LogQuadraticContention

WORKLOADS = {"lulesh": LuleshWorkload, "milc": MilcWorkload}

#: The measurement-only ``sweep`` command additionally accepts a small
#: synthetic app, cheap enough for smoke tests of the parallel runner.
SWEEP_WORKLOADS = {**WORKLOADS, "synthetic": make_scaling_workload}

LULESH_PARAMS = ["p", "size", "regions", "balance", "cost", "iters"]
MILC_PARAMS = [
    "p", "nx", "ny", "nz", "nt",
    "steps", "niter", "warms", "trajecs", "nrestart", "mass", "beta",
]


def _workload(
    name: str,
    parameters: tuple[str, ...] | None = None,
    registry: dict | None = None,
):
    registry = WORKLOADS if registry is None else registry
    try:
        cls = registry[name]
    except KeyError:
        # Exit with a one-line error instead of a raw KeyError traceback.
        raise SystemExit(
            f"error: unknown app '{name}' "
            f"(valid apps: {', '.join(sorted(registry))})"
        ) from None
    return cls(parameters=parameters) if parameters else cls()


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got '{text}'")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _cache_dir(text: str) -> str:
    import pathlib

    path = pathlib.Path(text)
    if path.exists() and not path.is_dir():
        raise argparse.ArgumentTypeError(
            f"'{text}' exists and is not a directory"
        )
    return text


def _parse_values(pairs: Sequence[str]) -> dict[str, list[float]]:
    out: dict[str, list[float]] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"expected name=v1,v2,... got '{pair}'")
        name, values = pair.split("=", 1)
        out[name] = [float(v) for v in values.split(",") if v]
        if not out[name]:
            raise SystemExit(f"no values for parameter '{name}'")
    return out


def cmd_analyze(args: argparse.Namespace) -> int:
    workload = _workload(args.app)
    pipeline = PerfTaintPipeline(workload=workload)
    static, taint, volumes, deps, classification = pipeline.analyze()
    print(render_table2(args.app.upper(), classification))
    params = LULESH_PARAMS if args.app == "lulesh" else MILC_PARAMS
    print()
    print(
        render_table3(
            args.app.upper(),
            table3_counts(workload.program(), taint, params),
        )
    )
    if taint.warnings:
        print("\nWarnings:")
        for w in taint.warnings:
            print(f"  * {w}")
    return 0


def cmd_model(args: argparse.Namespace) -> int:
    values = _parse_values(args.values)
    workload = _workload(args.app, tuple(values))
    pipeline = PerfTaintPipeline(
        workload=workload,
        repetitions=args.repetitions,
        seed=args.seed,
        n_jobs=args.jobs,
        cache_dir=args.cache_dir,
        engine=args.engine,
    )
    result = pipeline.run(
        values,
        mode=InstrumentationMode(args.mode),
        compare_black_box=args.compare,
    )
    print(render_summary(args.app.upper(), result))
    return 0


def cmd_contention(args: argparse.Namespace) -> int:
    workload = _workload(args.app, ("r",))
    pipeline = PerfTaintPipeline(
        workload=workload,
        repetitions=args.repetitions,
        seed=args.seed,
        contention=LogQuadraticContention(beta=args.beta),
        engine=args.engine,
    )
    static, taint, volumes, deps, _ = pipeline.analyze()
    plan = pipeline.plan_for(InstrumentationMode.TAINT_FILTER, taint, static)
    design = [
        {"r": r, "p": args.p, "size": args.size}
        for r in [float(v) for v in args.r.split(",")]
    ]
    meas, _ = pipeline.measure(design, plan)
    models = pipeline.model(meas, taint, volumes, compare_black_box=True)
    findings = pipeline.validate(meas, models, taint)
    if APP_KEY not in models:
        raise SystemExit(
            "error: no whole-application model could be fitted "
            "(all measurements failed the noise screen)"
        )
    app_model = models[APP_KEY].black_box or models[APP_KEY].hybrid
    print(f"application model over r: {app_model.format()}")
    print(f"contention findings: {len(findings)}")
    for f in findings:
        print(f"  ! {f}")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    from .measure.experiment import full_factorial
    from .measure.instrumentation import full_plan
    from .measure.parallel import ParallelExperimentRunner

    values = _parse_values(args.values)
    workload = _workload(args.app, tuple(values), registry=SWEEP_WORKLOADS)
    design = full_factorial(values)
    runner = ParallelExperimentRunner(
        workload=workload,
        plan=full_plan(workload.program()),
        repetitions=args.repetitions,
        seed=args.seed,
        n_jobs=args.jobs,
        cache_dir=args.cache_dir,
        engine=args.engine,
    )
    started = time.perf_counter()
    measurements, profiles = runner.run(design)
    elapsed = time.perf_counter() - started
    samples = sum(
        len(v) for per_fn in measurements.data.values() for v in per_fn.values()
    )
    print(
        f"swept {len(design)} configurations "
        f"({runner.last_stats.executed} executed, "
        f"{runner.last_stats.cached} from cache) "
        f"with {args.jobs} job(s) in {elapsed:.2f}s"
    )
    print(
        f"collected {samples} measurements over "
        f"{len(measurements.functions())} functions"
    )
    if args.output:
        from .measure.io import save_measurements

        save_measurements(measurements, args.output)
        print(f"wrote {args.output}")
    return 0


def cmd_segments(args: argparse.Namespace) -> int:
    workload = _workload(args.app)
    configs = [
        {"p": float(p), "size": args.size}
        for p in args.p.split(",")
    ]
    findings = detect_segmented_behavior(
        workload.program(),
        configs,
        workload.setup,
        workload.sources(),
        library_taint=MPI_DATABASE,
    )
    if not findings:
        print("no qualitative behavior changes detected")
    for f in findings:
        print(
            f"! {f.function} branch {f.branch_id} "
            f"(depends on {sorted(f.params)}): {f.boundary()}"
        )
    return 0


def _add_engine_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engine",
        default=DEFAULT_MEASUREMENT_ENGINE,
        choices=sorted(ENGINES),
        help="execution engine for the measurement stage (the taint "
        "stage always uses the tree-walker); both engines produce "
        "bit-identical results",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Perf-Taint reproduction: tainted performance modeling",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("analyze", help="static + taint analysis report")
    p.add_argument("app", choices=sorted(WORKLOADS))
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("model", help="run the full modeling pipeline")
    p.add_argument("app", choices=sorted(WORKLOADS))
    p.add_argument(
        "--values",
        nargs="+",
        required=True,
        metavar="NAME=V1,V2",
        help="parameter value lists, e.g. p=27,64,125 size=10,15,20",
    )
    p.add_argument(
        "--mode",
        default="taint",
        choices=[m.value for m in InstrumentationMode],
    )
    p.add_argument("--repetitions", type=_positive_int, default=5)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--compare", action="store_true", help="also fit black-box models"
    )
    p.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        help="worker processes for the measurement stage",
    )
    p.add_argument(
        "--cache-dir",
        type=_cache_dir,
        default=None,
        help="run-cache directory (reruns skip measured configurations)",
    )
    _add_engine_arg(p)
    p.set_defaults(func=cmd_model)

    p = sub.add_parser(
        "sweep",
        help="measurement stage only, parallel with an optional run cache",
    )
    p.add_argument("app", help=f"one of: {', '.join(sorted(SWEEP_WORKLOADS))}")
    p.add_argument(
        "--values",
        nargs="+",
        required=True,
        metavar="NAME=V1,V2",
        help="parameter value lists, e.g. p=2,4 s=4,8",
    )
    p.add_argument("--repetitions", type=_positive_int, default=5)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--jobs", type=_positive_int, default=1)
    p.add_argument("--cache-dir", type=_cache_dir, default=None)
    p.add_argument(
        "--output", default=None, help="write measurements JSON here"
    )
    _add_engine_arg(p)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("contention", help="ranks-per-node study (C1)")
    p.add_argument("app", choices=sorted(WORKLOADS))
    p.add_argument("--r", default="2,4,8,12,16", help="ranks/node values")
    p.add_argument("--p", type=float, default=64)
    p.add_argument("--size", type=float, default=16)
    p.add_argument("--beta", type=float, default=0.06)
    p.add_argument("--repetitions", type=_positive_int, default=3)
    p.add_argument("--seed", type=int, default=0)
    _add_engine_arg(p)
    p.set_defaults(func=cmd_contention)

    p = sub.add_parser("segments", help="branch-direction validation (C2)")
    p.add_argument("app", choices=sorted(WORKLOADS))
    p.add_argument("--p", default="4,8,16,32,64", help="rank counts to probe")
    p.add_argument("--size", type=float, default=16)
    p.set_defaults(func=cmd_segments)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
