"""repro — a reproduction of Perf-Taint (PPoPP'21).

"Extracting Clean Performance Models from Tainted Programs" (Copik,
Calotoiu, Grosser, Wicki, Wolf, Hoefler): dynamic taint analysis as a
white-box prior for empirical performance modeling.

Quickstart::

    from repro import LuleshWorkload, PerfTaintPipeline

    pipeline = PerfTaintPipeline(workload=LuleshWorkload())
    result = pipeline.run({"p": [27, 64, 125], "size": [10, 20, 30]})
    for name, cmp in result.models.items():
        print(name, cmp.hybrid.format())

Or declaratively, with persistent and resumable stage artifacts (see
:mod:`repro.api` and :mod:`repro.registry`)::

    from repro.api import Campaign

    campaign = Campaign.from_spec(
        {"app": "lulesh", "parameters": {"p": [27, 64], "size": [10, 20]}},
        workspace="./campaign-ws",
    )
    result = campaign.run()  # reruns resume unchanged stages

Subpackages: :mod:`repro.ir` (program IR), :mod:`repro.interp` (metered
interpreter), :mod:`repro.taint` (taint engine), :mod:`repro.staticanalysis`
(compile-time phase), :mod:`repro.volume` (iteration-volume calculus),
:mod:`repro.mpisim` (MPI substrate), :mod:`repro.libdb` (library database),
:mod:`repro.measure` (profiling and experiments), :mod:`repro.modeling`
(Extra-P re-implementation), :mod:`repro.core` (the pipeline),
:mod:`repro.apps` (LULESH/MILC mini-apps).
"""

from .apps import LuleshWorkload, MilcWorkload, SyntheticWorkload
from .core import (
    Campaign,
    HybridModeler,
    PerfTaintPipeline,
    PerfTaintResult,
    detect_contention,
    detect_segmented_behavior,
    render_summary,
)
from .errors import ReproError
from .measure import InstrumentationMode
from .modeling import Model, Modeler, SearchPrior
from .taint import TaintEngine, TaintInterpreter, TaintReport

__version__ = "1.0.0"

__all__ = [
    "Campaign",
    "HybridModeler",
    "InstrumentationMode",
    "LuleshWorkload",
    "MilcWorkload",
    "Model",
    "Modeler",
    "PerfTaintPipeline",
    "PerfTaintResult",
    "ReproError",
    "SearchPrior",
    "SyntheticWorkload",
    "TaintEngine",
    "TaintInterpreter",
    "TaintReport",
    "detect_contention",
    "detect_segmented_behavior",
    "render_summary",
    "__version__",
]
