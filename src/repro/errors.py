"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type at the API boundary.  Sub-hierarchies mirror the
pipeline stages described in the paper: program construction (IR), execution
(interpreter), taint analysis, measurement, and modeling.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class IRError(ReproError):
    """Malformed program IR (validation failures, duplicate names, ...)."""


class IRValidationError(IRError):
    """A program failed structural validation (see :mod:`repro.ir.validate`)."""


class InterpreterError(ReproError):
    """Runtime failure while interpreting a program."""


class UndefinedVariableError(InterpreterError):
    """A variable was read before any assignment."""

    def __init__(self, name: str, function: str | None = None) -> None:
        self.name = name
        self.function = function
        where = f" in function '{function}'" if function else ""
        super().__init__(f"undefined variable '{name}'{where}")


class UndefinedFunctionError(InterpreterError):
    """A call referenced a function unknown to the program and library DB."""

    def __init__(self, name: str) -> None:
        self.name = name
        super().__init__(f"undefined function '{name}'")


class ArityError(InterpreterError):
    """A call supplied the wrong number of arguments."""

    def __init__(self, name: str, expected: int, got: int) -> None:
        self.name = name
        self.expected = expected
        self.got = got
        super().__init__(
            f"function '{name}' expects {expected} argument(s), got {got}"
        )


class ExecutionLimitError(InterpreterError):
    """An execution engine exceeded a configured limit (likely a hang).

    Raised for both the step budget (``ExecConfig.step_limit``) and the
    call-depth bound (``ExecConfig.max_call_depth``).  The message names
    the offending function and the configured limit; both are also
    exposed as attributes for programmatic handling.
    """

    def __init__(
        self,
        message: str,
        function: str | None = None,
        limit: int | None = None,
    ) -> None:
        super().__init__(message)
        self.function = function
        self.limit = limit


class TaintError(ReproError):
    """Failure inside the dynamic taint engine."""


class LabelExhaustionError(TaintError):
    """The 16-bit union-label space was exhausted (paper, section 5.2)."""


class RecursionUnsupportedError(TaintError):
    """Recursive call encountered: analysis results are over-approximated.

    The paper's analysis "does not support recursive functions" but "warns of
    over-approximation when recursion is detected" (section 4.1).  Engines
    raise this only in strict mode; the default is to warn.
    """


class RegistryError(ReproError, ValueError):
    """A component-registry lookup failed (unknown name, unnameable
    factory).  Subclasses :class:`ValueError` so pre-registry callers that
    guarded name lookups with ``except ValueError`` keep working."""


class PipelineError(ReproError):
    """A pipeline/campaign stage cannot run with the inputs it was given.

    Names the stage and, when applicable, the missing upstream artifact —
    both as message text and as attributes for programmatic handling.
    """

    def __init__(
        self,
        stage: str,
        message: str,
        missing_artifact: str | None = None,
    ) -> None:
        self.stage = stage
        self.missing_artifact = missing_artifact
        detail = message
        if missing_artifact is not None:
            detail = f"{message} (missing artifact: '{missing_artifact}')"
        super().__init__(f"stage '{stage}': {detail}")


class CampaignSpecError(ReproError):
    """A declarative campaign spec is malformed (unknown keys, bad types,
    unregistered component names)."""


class ArtifactError(ReproError):
    """A persisted stage artifact could not be decoded."""


class MeasurementError(ReproError):
    """Failure in the measurement / instrumentation substrate."""


class ModelingError(ReproError):
    """Failure in the empirical modeling substrate (Extra-P reimplementation)."""


class DesignError(ReproError):
    """Invalid experiment design specification."""
