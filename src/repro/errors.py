"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type at the API boundary.  Sub-hierarchies mirror the
pipeline stages described in the paper: program construction (IR), execution
(interpreter), taint analysis, measurement, and modeling.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class IRError(ReproError):
    """Malformed program IR (validation failures, duplicate names, ...)."""


class IRValidationError(IRError):
    """A program failed structural validation (see :mod:`repro.ir.validate`)."""


class InterpreterError(ReproError):
    """Runtime failure while interpreting a program."""


class UndefinedVariableError(InterpreterError):
    """A variable was read before any assignment."""

    def __init__(self, name: str, function: str | None = None) -> None:
        self.name = name
        self.function = function
        where = f" in function '{function}'" if function else ""
        super().__init__(f"undefined variable '{name}'{where}")


class UndefinedFunctionError(InterpreterError):
    """A call referenced a function unknown to the program and library DB."""

    def __init__(self, name: str) -> None:
        self.name = name
        super().__init__(f"undefined function '{name}'")


class ArityError(InterpreterError):
    """A call supplied the wrong number of arguments."""

    def __init__(self, name: str, expected: int, got: int) -> None:
        self.name = name
        self.expected = expected
        self.got = got
        super().__init__(
            f"function '{name}' expects {expected} argument(s), got {got}"
        )


class ExecutionLimitError(InterpreterError):
    """An execution engine exceeded a configured limit (likely a hang).

    Raised for both the step budget (``ExecConfig.step_limit``) and the
    call-depth bound (``ExecConfig.max_call_depth``).  The message names
    the offending function and the configured limit; both are also
    exposed as attributes for programmatic handling.
    """

    def __init__(
        self,
        message: str,
        function: str | None = None,
        limit: int | None = None,
    ) -> None:
        super().__init__(message)
        self.function = function
        self.limit = limit


class TaintError(ReproError):
    """Failure inside the dynamic taint engine."""


class LabelExhaustionError(TaintError):
    """The 16-bit union-label space was exhausted (paper, section 5.2)."""


class RecursionUnsupportedError(TaintError):
    """Recursive call encountered: analysis results are over-approximated.

    The paper's analysis "does not support recursive functions" but "warns of
    over-approximation when recursion is detected" (section 4.1).  Engines
    raise this only in strict mode; the default is to warn.
    """


class RegistryError(ReproError, ValueError):
    """A component-registry lookup failed (unknown name, unnameable
    factory).  Subclasses :class:`ValueError` so pre-registry callers that
    guarded name lookups with ``except ValueError`` keep working."""


class PipelineError(ReproError):
    """A pipeline/campaign stage cannot run with the inputs it was given.

    Names the stage and, when applicable, the missing upstream artifact —
    both as message text and as attributes for programmatic handling.
    """

    def __init__(
        self,
        stage: str,
        message: str,
        missing_artifact: str | None = None,
    ) -> None:
        self.stage = stage
        self.missing_artifact = missing_artifact
        detail = message
        if missing_artifact is not None:
            detail = f"{message} (missing artifact: '{missing_artifact}')"
        super().__init__(f"stage '{stage}': {detail}")


class CampaignSpecError(ReproError):
    """A declarative campaign spec is malformed (unknown keys, bad types,
    unregistered component names)."""


class ArtifactError(ReproError):
    """A persisted stage artifact could not be decoded."""


class ServiceError(ReproError):
    """Failure in the distributed campaign service (broker, worker,
    remote store, or campaign server).

    The service CLI boundary wraps bare socket/JSON failures into this
    hierarchy so users see which endpoint, lease, or fingerprint is
    involved instead of a raw traceback.
    """


class TransientServiceError(ServiceError):
    """A service failure that is expected to heal on retry.

    Connection refusals/resets, dropped or garbled responses, timeouts,
    and HTTP 5xx replies all land here: the request may simply be
    repeated (every service write is idempotent under its campaign or
    lease fingerprint).  The shared backoff policy in
    :mod:`repro.service.retry` retries exactly this class; everything
    else — version skew, malformed specs, unknown campaigns — is
    permanent and surfaces immediately.
    """


class RetryExhausted(ServiceError):
    """A retried call failed through its whole backoff budget.

    Carries the idempotency *key* that named the operation and the full
    per-attempt trace (error text and the backoff slept before the next
    try), so a flaky deployment is diagnosable from the exception alone.
    The last underlying error is chained as ``__cause__``.
    """

    def __init__(
        self,
        key: str,
        attempts: "list[dict] | None" = None,
        detail: str | None = None,
    ) -> None:
        self.key = key
        self.attempts = list(attempts or [])
        lines = [
            f"retry budget exhausted after {len(self.attempts)} attempt(s) "
            f"for '{key}'"
        ]
        if detail:
            lines[0] += f": {detail}"
        for entry in self.attempts:
            lines.append(
                f"  attempt {entry.get('attempt')}: {entry.get('error')}"
                + (
                    f" (backed off {entry.get('backoff'):g}s)"
                    if entry.get("backoff") is not None
                    else ""
                )
            )
        super().__init__("\n".join(lines))


class LeaseTimeout(ServiceError):
    """A measure-stage lease exhausted its retry budget.

    Every attempt either timed out (worker death, hang) or was failed
    explicitly by a worker.  The message names the lease, the owning job,
    and the configuration fingerprints still outstanding so the stuck
    work is identifiable in the shared cache.
    """

    def __init__(
        self,
        lease_id: str,
        job_id: str | None = None,
        attempts: int | None = None,
        fingerprints: "tuple[str, ...] | None" = None,
        detail: str | None = None,
    ) -> None:
        self.lease_id = lease_id
        self.job_id = job_id
        self.attempts = attempts
        self.fingerprints = tuple(fingerprints or ())
        parts = [f"lease '{lease_id}'"]
        if job_id is not None:
            parts.append(f"of job '{job_id}'")
        message = " ".join(parts)
        if attempts is not None:
            message += f" failed after {attempts} attempt(s)"
        if self.fingerprints:
            shown = ", ".join(fp[:12] for fp in self.fingerprints[:3])
            more = (
                f" (+{len(self.fingerprints) - 3} more)"
                if len(self.fingerprints) > 3
                else ""
            )
            message += f"; outstanding run fingerprints: {shown}{more}"
        if detail:
            message += f"; last error: {detail}"
        message += (
            " — check worker logs, then resubmit: completed leases are "
            "already in the shared cache and will not re-execute"
        )
        super().__init__(message)


class ProtocolVersionMismatch(ServiceError):
    """A service message carried an incompatible protocol version.

    Raised instead of silently misinterpreting messages when brokers,
    workers, and clients are running different repro versions.
    """

    def __init__(self, got: object, expected: int) -> None:
        self.got = got
        self.expected = expected
        super().__init__(
            f"service protocol version mismatch: peer sent {got!r}, this "
            f"process speaks version {expected} — upgrade the older side "
            "(broker, worker, and client must run the same repro protocol)"
        )


class MeasurementError(ReproError):
    """Failure in the measurement / instrumentation substrate."""


class ModelingError(ReproError):
    """Failure in the empirical modeling substrate (Extra-P reimplementation)."""


class DesignError(ReproError):
    """Invalid experiment design specification."""
