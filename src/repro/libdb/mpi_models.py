"""The MPI library database shipped with Perf-Taint (paper section 5.3).

"We declare the implicit parameter ``p``, which denotes the size of the
global communicator, and we include the function ``MPI_Comm_size`` as a
source of tainted values. ... We derive parametric dependencies for MPI
communication and synchronization routines from precise analytical models."

Dependency summary (matching :mod:`repro.mpisim.collectives`):

* queries (``MPI_Comm_size``, ``MPI_Comm_rank``, ``MPI_Wtime``) —
  constant-time, **not** performance relevant; ``MPI_Comm_size`` is a
  *source* of ``p``.
* point-to-point (``MPI_Send``/``Recv``/``Isend``/``Irecv``/``Wait``) —
  implicit dependence on ``p`` plus the labels of the count argument.
* collectives — implicit ``p`` plus count labels.
"""

from __future__ import annotations

from .database import LibraryDatabase, LibraryEntry

#: Name of the implicit communicator-size parameter.
IMPLICIT_RANKS_PARAM = "p"


def mpi_database() -> LibraryDatabase:
    """Build the standard MPI library database."""
    db = LibraryDatabase()
    p = frozenset({IMPLICIT_RANKS_PARAM})

    # Constant-time queries.
    db.register(
        LibraryEntry(
            "MPI_Comm_size",
            source_params=p,
            performance_relevant=False,
        )
    )
    db.register(LibraryEntry("MPI_Comm_rank", performance_relevant=False))
    db.register(LibraryEntry("MPI_Wtime", performance_relevant=False))
    db.register(LibraryEntry("MPI_Init", performance_relevant=False))
    db.register(LibraryEntry("MPI_Finalize", performance_relevant=False))

    # Point-to-point: depends on p (network conditions / neighborhood) and
    # on the message size (count argument at index 0).
    for name in ("MPI_Send", "MPI_Recv", "MPI_Isend", "MPI_Irecv"):
        db.register(
            LibraryEntry(name, implicit_params=p, count_args=(0,))
        )
    db.register(LibraryEntry("MPI_Wait", implicit_params=p, count_args=(0,)))

    # Collectives with (value, count) calling convention.
    for name in ("MPI_Bcast", "MPI_Reduce", "MPI_Allreduce"):
        db.register(
            LibraryEntry(name, implicit_params=p, count_args=(1,))
        )
    # Collectives with (count) calling convention.
    for name in ("MPI_Allgather", "MPI_Gather", "MPI_Scatter", "MPI_Alltoall"):
        db.register(
            LibraryEntry(name, implicit_params=p, count_args=(0,))
        )
    db.register(LibraryEntry("MPI_Barrier", implicit_params=p))
    return db


#: Shared default instance.
MPI_DATABASE = mpi_database()
