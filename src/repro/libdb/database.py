"""The global-state library database (paper section 5.3).

Loop-based kernels are not the only channel through which parameters affect
performance: library routines (a) receive tainted arguments, (b) receive
the parameter explicitly, or (c) hide the parameter in their runtime.  The
database solves (b) and (c) by describing, per routine:

* **implicit parameters** its performance depends on (every MPI routine
  depends on the communicator size ``p``);
* **source semantics** — values it returns that carry implicit parameters
  (``MPI_Comm_size`` is a source of ``p``-labeled data);
* **count arguments** whose taint labels become additional parametric
  dependencies of the call site ("we query the taint labels associated
  with the count argument ... and add them as additional parametric
  dependencies", 5.3);
* **relevance** — whether the routine is performance-relevant at all
  (``MPI_Comm_rank`` is a constant-time query; treating it as relevant is
  exactly the false-positive the paper's B1 experiment corrects).

The database implements the
:class:`~repro.taint.sources.LibraryTaintModel` protocol consumed by the
taint engine, and is user-extensible via :meth:`LibraryDatabase.register`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..interp.values import Value
from ..taint.sources import LibraryTaintEffect


@dataclass(frozen=True)
class LibraryEntry:
    """Taint/performance description of one library routine."""

    name: str
    #: Implicit parameters the routine's performance depends on.
    implicit_params: frozenset[str] = frozenset()
    #: Implicit parameters carried by the routine's return value.
    source_params: frozenset[str] = frozenset()
    #: Indices of arguments whose labels join the call's dependencies
    #: (message counts / sizes).
    count_args: tuple[int, ...] = ()
    #: False for constant-time queries that should never appear in models.
    performance_relevant: bool = True


@dataclass
class LibraryDatabase:
    """A set of :class:`LibraryEntry` records, keyed by routine name."""

    entries: dict[str, LibraryEntry] = field(default_factory=dict)

    def register(self, entry: LibraryEntry) -> None:
        """Add or replace a routine description."""
        self.entries[entry.name] = entry

    def copy(self) -> "LibraryDatabase":
        """An independent database with the same entries.

        Entries are immutable, so a shallow copy of the mapping fully
        decouples the two databases: registering into one can never be
        observed by runs holding the other (shared instances like
        ``MPI_DATABASE`` must not be mutated by concurrent experiments).
        """
        return LibraryDatabase(entries=dict(self.entries))

    def get(self, name: str) -> LibraryEntry | None:
        """Entry for routine *name*, or None."""
        return self.entries.get(name)

    def fingerprint(self) -> str:
        """Deterministic content fingerprint of the registered entries.

        Registration-order and process independent (set contents are
        serialized sorted — ``repr(frozenset)`` order varies with hash
        randomization), so equal databases fingerprint identically across
        invocations.  Participates in campaign stage fingerprints (static
        and taint analyses depend on the database's relevance and source
        semantics).
        """
        return repr(
            [
                (
                    name,
                    sorted(entry.implicit_params),
                    sorted(entry.source_params),
                    list(entry.count_args),
                    entry.performance_relevant,
                )
                for name, entry in sorted(self.entries.items())
            ]
        )

    def relevant_routines(self) -> frozenset[str]:
        """Names of performance-relevant routines."""
        return frozenset(
            n for n, e in self.entries.items() if e.performance_relevant
        )

    def is_relevant(self, name: str) -> bool:
        """Predicate usable by the static pruning phase."""
        entry = self.entries.get(name)
        return entry is not None and entry.performance_relevant

    # -- LibraryTaintModel protocol --------------------------------------

    def handles(self, routine: str) -> bool:
        """True when the database describes *routine*."""
        return routine in self.entries

    def effect(
        self,
        routine: str,
        args: Sequence[Value],
        arg_params: Sequence[frozenset[str]],
    ) -> LibraryTaintEffect:
        """Taint effect of one invocation (see LibraryTaintModel)."""
        entry = self.entries[routine]
        deps: frozenset[str] = frozenset()
        if entry.performance_relevant:
            deps = entry.implicit_params
            for idx in entry.count_args:
                if idx < len(arg_params):
                    deps |= arg_params[idx]
        return LibraryTaintEffect(
            return_label_params=entry.source_params,
            dependency_params=deps,
        )
