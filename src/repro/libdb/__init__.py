"""Global-state library database (paper section 5.3)."""

from .database import LibraryDatabase, LibraryEntry
from .mpi_models import IMPLICIT_RANKS_PARAM, MPI_DATABASE, mpi_database

__all__ = [
    "IMPLICIT_RANKS_PARAM",
    "LibraryDatabase",
    "LibraryEntry",
    "MPI_DATABASE",
    "mpi_database",
]
