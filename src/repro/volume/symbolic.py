"""Symbolic iteration volumes.

The taint analysis yields, for each loop L, a *class of functions*
``g_L(p1, ..., pn)`` over the marked parameters (paper Claim 1) — the exact
function is unknown until empirical modeling parameterizes it.  The volume
calculus composes these opaque loop-count symbols:

* **sequencing** two loop nests adds volumes (paper 4.2),
* **nesting** multiplies the outer count with the inner volume.

A :class:`Volume` is a sum of :class:`Term`s; a term is a constant
multiplier times a product of :class:`LoopCount` symbols.  The parameter
structure of the terms (which parameters co-occur in a product) is exactly
the additive/multiplicative dependency information of section A2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable


@dataclass(frozen=True)
class LoopCount:
    """The unknown iteration-count function ``g(params)`` of one loop."""

    function: str
    loop_id: int
    params: frozenset[str] = frozenset()

    def __str__(self) -> str:
        args = ", ".join(sorted(self.params)) if self.params else ""
        return f"g[{self.function}#{self.loop_id}]({args})"

    def _key(self) -> tuple:
        return (self.function, self.loop_id, tuple(sorted(self.params)))

    def __lt__(self, other: "LoopCount") -> bool:  # stable ordering for keys
        return self._key() < other._key()

    def __le__(self, other: "LoopCount") -> bool:
        return self._key() <= other._key()

    def __gt__(self, other: "LoopCount") -> bool:
        return self._key() > other._key()

    def __ge__(self, other: "LoopCount") -> bool:
        return self._key() >= other._key()


@dataclass(frozen=True)
class Term:
    """``coefficient * prod(factors)``; factors sorted for canonical form."""

    coefficient: float
    factors: tuple[LoopCount, ...]

    @property
    def params(self) -> frozenset[str]:
        """All parameters occurring anywhere in this term."""
        out: frozenset[str] = frozenset()
        for f in self.factors:
            out |= f.params
        return out

    @property
    def is_constant(self) -> bool:
        """True when no factor depends on any parameter."""
        return not self.params

    def key(self) -> tuple[LoopCount, ...]:
        return self.factors

    def __str__(self) -> str:
        if not self.factors:
            return f"{self.coefficient:g}"
        factors = " * ".join(str(f) for f in self.factors)
        if self.coefficient == 1:
            return factors
        return f"{self.coefficient:g} * {factors}"


class Volume:
    """A sum of terms, canonicalized by merging equal factor products."""

    __slots__ = ("terms",)

    def __init__(self, terms: Iterable[Term] = ()) -> None:
        merged: dict[tuple[LoopCount, ...], float] = {}
        for term in terms:
            if term.coefficient == 0:
                continue
            merged[term.key()] = merged.get(term.key(), 0.0) + term.coefficient
        self.terms: tuple[Term, ...] = tuple(
            Term(coef, key)
            for key, coef in sorted(
                merged.items(), key=lambda kv: (len(kv[0]), kv[0])
            )
            if coef != 0
        )

    # -- constructors ---------------------------------------------------

    @classmethod
    def zero(cls) -> "Volume":
        return cls()

    @classmethod
    def constant(cls, value: float) -> "Volume":
        return cls([Term(float(value), ())])

    @classmethod
    def of_loop(cls, count: LoopCount) -> "Volume":
        return cls([Term(1.0, (count,))])

    # -- algebra -----------------------------------------------------------

    def __add__(self, other: "Volume") -> "Volume":
        return Volume(self.terms + other.terms)

    def __mul__(self, other: "Volume") -> "Volume":
        out: list[Term] = []
        for a in self.terms:
            for b in other.terms:
                out.append(
                    Term(
                        a.coefficient * b.coefficient,
                        tuple(sorted(a.factors + b.factors)),
                    )
                )
        return Volume(out)

    def scaled(self, value: float) -> "Volume":
        return Volume([Term(t.coefficient * value, t.factors) for t in self.terms])

    # -- queries ---------------------------------------------------------------

    @property
    def is_constant(self) -> bool:
        """True when no term depends on any parameter (section 4.3: constant
        compute volume -> constant model)."""
        return all(t.is_constant for t in self.terms)

    @property
    def params(self) -> frozenset[str]:
        """All parameters the volume depends on."""
        out: frozenset[str] = frozenset()
        for t in self.terms:
            out |= t.params
        return out

    def param_groups(self) -> list[frozenset[str]]:
        """Parameter sets of the non-constant terms (for dependency
        classification: parameters in the same group multiply)."""
        return [t.params for t in self.terms if not t.is_constant]

    def degree(self) -> int:
        """Maximum number of unknown loop factors in any term (nesting
        depth of parameter-dependent loops)."""
        return max((len(t.factors) for t in self.terms), default=0)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Volume):
            return NotImplemented
        return self.terms == other.terms

    def __hash__(self) -> int:
        return hash(self.terms)

    def __str__(self) -> str:
        if not self.terms:
            return "0"
        return " + ".join(str(t) for t in self.terms)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Volume({self})"
