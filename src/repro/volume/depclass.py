"""Additive vs multiplicative parameter dependencies (paper section A2).

"Taint analysis can find parameter dependencies, such as multiplicative
dependencies between parameters influencing the iteration count in outer
and inner loops, and additive dependencies between parameters influencing
the iteration count of non-nested loops."

Classification rules over a symbolic :class:`~repro.volume.symbolic.Volume`:

* two parameters are **multiplicative** when they co-occur in one product
  term — either via nested loops or via a single exit condition carrying
  both labels, the latter being the paper's sole over-approximation
  ("we conservatively report a multiplicative dependency");
* parameters appearing only in disjoint terms are **additive**;
* routines whose dependencies are additive-only admit single-parameter
  experiment designs, shrinking the sweep from a product to a sum of
  configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

from .symbolic import Volume


@dataclass(frozen=True)
class DependencyClass:
    """Dependency structure of one function (or program)."""

    params: frozenset[str]
    #: Maximal parameter groups that appear together in a product term.
    multiplicative_groups: tuple[frozenset[str], ...]
    #: Unordered parameter pairs classified as multiplicative.
    multiplicative_pairs: frozenset[frozenset[str]]

    @property
    def additive_only(self) -> bool:
        """True when no two parameters multiply (section A2 fast path)."""
        return not self.multiplicative_pairs

    def are_multiplicative(self, a: str, b: str) -> bool:
        """True when parameters *a* and *b* co-occur in a product term."""
        return frozenset({a, b}) in self.multiplicative_pairs

    def are_additive(self, a: str, b: str) -> bool:
        """True when both parameters occur but never together."""
        return (
            a in self.params
            and b in self.params
            and not self.are_multiplicative(a, b)
        )


def classify_volume(volume: Volume) -> DependencyClass:
    """Classify the dependency structure of *volume*."""
    groups = volume.param_groups()
    pairs: set[frozenset[str]] = set()
    for group in groups:
        for a, b in combinations(sorted(group), 2):
            pairs.add(frozenset({a, b}))
    # Maximal groups: drop groups strictly contained in another.
    unique = sorted(set(groups), key=lambda g: (-len(g), sorted(g)))
    maximal: list[frozenset[str]] = []
    for group in unique:
        if len(group) < 2:
            continue
        if not any(group < other for other in maximal):
            maximal.append(group)
    return DependencyClass(
        params=volume.params,
        multiplicative_groups=tuple(maximal),
        multiplicative_pairs=frozenset(pairs),
    )


@dataclass
class ProgramDependencies:
    """Dependency classes for every function plus the whole program."""

    per_function: dict[str, DependencyClass] = field(default_factory=dict)
    program: DependencyClass | None = None

    def additive_only_functions(self) -> frozenset[str]:
        """Functions whose dependencies are additive-only."""
        return frozenset(
            name
            for name, dep in self.per_function.items()
            if dep.params and dep.additive_only
        )

    def multiplicative_functions(self) -> frozenset[str]:
        """Functions with at least one multiplicative pair."""
        return frozenset(
            name
            for name, dep in self.per_function.items()
            if not dep.additive_only
        )


def classify_program(volumes: "dict[str, Volume]", program_volume: Volume) -> ProgramDependencies:
    """Classify every function volume plus the program volume."""
    out = ProgramDependencies()
    for name, vol in volumes.items():
        out.per_function[name] = classify_volume(vol)
    out.program = classify_volume(program_volume)
    return out
