"""Iteration-volume calculus (paper sections 4.2–4.3) and dependency
classification (section A2)."""

from .depclass import (
    DependencyClass,
    ProgramDependencies,
    classify_program,
    classify_volume,
)
from .loopnest import VolumeAnalyzer, VolumeReport, compute_volumes
from .symbolic import LoopCount, Term, Volume

__all__ = [
    "DependencyClass",
    "LoopCount",
    "ProgramDependencies",
    "Term",
    "Volume",
    "VolumeAnalyzer",
    "VolumeReport",
    "classify_program",
    "classify_volume",
    "compute_volumes",
]
