"""Iteration-volume composition over the structured IR (paper 4.2–4.3).

Walks function bodies applying the two composition rules:

* sequencing loop nests sums volumes,
* nesting multiplies the outer loop count with the inner volume,

and accumulates volumes across the (non-recursive) call tree.  Loop counts
come from two places: statically resolved trip counts (constants, from
:mod:`repro.staticanalysis.scev`) and taint-derived parameter classes
(opaque ``g(params)`` symbols, from the taint report).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..ir.callgraph import build_callgraph
from ..ir.expr import Call
from ..ir.program import Program
from ..ir.stmt import For, If, Stmt, While
from ..staticanalysis.scev import static_trip_count
from ..taint.report import TaintReport
from .symbolic import LoopCount, Volume


@dataclass
class VolumeReport:
    """Per-function and whole-program symbolic volumes."""

    #: Volume of each function's own body, with callee volumes inlined.
    inclusive: dict[str, Volume]
    #: Volume of each function's own loops only (no calls).
    exclusive: dict[str, Volume]
    #: Program volume: inclusive volume of the entry function.
    program: Volume
    warnings: list[str] = field(default_factory=list)


class VolumeAnalyzer:
    """Computes symbolic volumes of a program.

    Parameters
    ----------
    program:
        The finalized program.
    taint:
        Taint report supplying parameter classes for dynamic loops.  Loops
        the taint run never executed produce a warning and are treated as
        parameter-free (the paper's analysis likewise only sees executed
        code; section C2 turns this into an experiment-design check).
    """

    def __init__(self, program: Program, taint: TaintReport) -> None:
        self.program = program
        self.taint = taint
        self.warnings: list[str] = []
        self._callgraph = build_callgraph(program)
        self._inclusive_cache: dict[str, Volume] = {}
        self._loop_param_map = taint.loops_by_function()

    # ------------------------------------------------------------------

    def analyze(self) -> VolumeReport:
        """Compute volumes for every function and the program."""
        if self._callgraph.has_recursion:
            rec = ", ".join(sorted(self._callgraph.recursive_functions()))
            self.warnings.append(
                f"recursive functions ({rec}): volume accumulation skips "
                "recursive call edges (over-approximation, section 4.1)"
            )
        exclusive = {
            fn.name: self._body_volume(fn.name, fn.body, inline_calls=False)
            for fn in self.program
        }
        inclusive = {
            fn.name: self._function_volume(fn.name) for fn in self.program
        }
        return VolumeReport(
            inclusive=inclusive,
            exclusive=exclusive,
            program=inclusive[self.program.entry],
            warnings=list(self.warnings),
        )

    def _function_volume(self, name: str) -> Volume:
        if name in self._inclusive_cache:
            return self._inclusive_cache[name]
        # Break recursion cycles: mark in-progress functions as constant.
        self._inclusive_cache[name] = Volume.constant(1.0)
        fn = self.program.function(name)
        vol = self._body_volume(name, fn.body, inline_calls=True)
        self._inclusive_cache[name] = vol
        return vol

    # ------------------------------------------------------------------

    def _loop_count(self, fn_name: str, loop: Stmt) -> Volume:
        """Loop count as a volume: constant if static, else g(params)."""
        static = static_trip_count(loop)
        if static is not None:
            return Volume.constant(float(static))
        loop_id = getattr(loop, "loop_id", -1)
        params = self._loop_param_map.get(fn_name, {}).get(loop_id)
        if params is None:
            self.warnings.append(
                f"loop {fn_name}#{loop_id} was not executed during the "
                "taint run; its parameter class is unknown"
            )
            params = frozenset()
        return Volume.of_loop(LoopCount(fn_name, loop_id, params))

    def _body_volume(
        self, fn_name: str, body: Sequence[Stmt], inline_calls: bool
    ) -> Volume:
        """Sequencing rule: the volume of a block is the sum of the volumes
        of its loop nests (plus a constant for straight-line code, which
        section 4.3 lets us ignore asymptotically — we keep a unit constant
        so empty functions still have a well-defined constant volume)."""
        total = Volume.constant(1.0)
        for stmt in body:
            total = total + self._stmt_volume(fn_name, stmt, inline_calls)
        return total

    def _stmt_volume(
        self, fn_name: str, stmt: Stmt, inline_calls: bool
    ) -> Volume:
        if isinstance(stmt, (For, While)):
            count = self._loop_count(fn_name, stmt)
            inner = Volume.constant(1.0)
            for sub in stmt.body:
                inner = inner + self._stmt_volume(fn_name, sub, inline_calls)
            # Nesting rule: vol(LN) = count(L) * vol(children).
            return count * inner
        if isinstance(stmt, If):
            # Both branches over-approximate the volume (sum >= max).
            vol = Volume.zero()
            for sub in stmt.then_body:
                vol = vol + self._stmt_volume(fn_name, sub, inline_calls)
            for sub in stmt.else_body:
                vol = vol + self._stmt_volume(fn_name, sub, inline_calls)
            return vol
        if inline_calls:
            vol = Volume.zero()
            for expr in stmt.exprs():
                for node in expr.walk():
                    if isinstance(node, Call) and node.callee in self.program:
                        if node.callee == fn_name:
                            continue  # recursion: skip (warned above)
                        vol = vol + self._function_volume(node.callee)
            return vol
        return Volume.zero()


def compute_volumes(program: Program, taint: TaintReport) -> VolumeReport:
    """Convenience wrapper: run the volume analysis."""
    return VolumeAnalyzer(program, taint).analyze()
