"""Static function pruning (paper section 5.1).

"At compile time, we identify all functions that contain no loops or only
loops with constant and statically resolvable trip counts since their
performance models are known to be independent from any program parameter.
... During this process, we include functions containing library calls that
are known to be affected by performance parameters, such as MPI
communication routines."

A function is *statically constant* iff

* every loop it owns has a statically resolvable trip count, and
* it issues no direct calls to performance-relevant library routines.

Such functions are pruned from instrumentation and their models are fixed
to constants without any measurement (rows "Pruned Statically" of Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.callgraph import build_callgraph
from ..ir.loops import loop_forest
from ..ir.program import Program
from .scev import is_static_loop, static_trip_count


def default_relevant_library(routine: str) -> bool:
    """Default predicate for performance-relevant library routines: the MPI
    communication/synchronization surface (cheap queries excluded).

    ``MPI_Comm_size``/``MPI_Comm_rank`` are constant-time queries; they are
    taint *sources*, not performance-relevant calls (the paper's B1 result
    hinges on ``MPI_Comm_rank`` being correctly modeled as constant).
    """
    if not routine.startswith("MPI_"):
        return False
    return routine not in (
        "MPI_Comm_size",
        "MPI_Comm_rank",
        "MPI_Wtime",
        "MPI_Init",
        "MPI_Finalize",
    )


@dataclass
class FunctionStaticInfo:
    """Static facts about one function."""

    name: str
    loops_total: int = 0
    loops_static: int = 0
    static_trip_counts: dict[int, int] = field(default_factory=dict)
    relevant_library_calls: frozenset[str] = frozenset()
    is_recursive: bool = False
    irreducible: bool = False

    @property
    def loops_dynamic(self) -> int:
        """Loops whose trip count is not statically resolvable."""
        return self.loops_total - self.loops_static

    @property
    def statically_constant(self) -> bool:
        """True when the function can be pruned at compile time."""
        return self.loops_dynamic == 0 and not self.relevant_library_calls


@dataclass
class StaticReport:
    """Static-analysis phase output for a whole program."""

    functions: dict[str, FunctionStaticInfo]
    warnings: list[str] = field(default_factory=list)

    def pruned_functions(self) -> frozenset[str]:
        """Functions whose models are constant by static analysis."""
        return frozenset(
            name
            for name, info in self.functions.items()
            if info.statically_constant
        )

    def surviving_functions(self) -> frozenset[str]:
        """Functions that proceed to the dynamic taint phase."""
        return frozenset(self.functions) - self.pruned_functions()

    def pruned_loops(self) -> int:
        """Count of statically resolved loops (Table 2 'Pruned Statically')."""
        return sum(info.loops_static for info in self.functions.values())

    def total_loops(self) -> int:
        """All loops in the program (Table 2 'Loops')."""
        return sum(info.loops_total for info in self.functions.values())

    def summary(self) -> dict[str, int]:
        """Table 2-style counters."""
        return {
            "functions": len(self.functions),
            "functions_pruned_statically": len(self.pruned_functions()),
            "loops": self.total_loops(),
            "loops_pruned_statically": self.pruned_loops(),
        }


def analyze_program(
    program: Program,
    relevant_library=default_relevant_library,
) -> StaticReport:
    """Run the compile-time phase over *program*."""
    callgraph = build_callgraph(program)
    recursive = callgraph.recursive_functions()
    report = StaticReport(functions={})

    for fn in program:
        info = FunctionStaticInfo(name=fn.name)
        loops = fn.loops()
        info.loops_total = len(loops)
        for loop in loops:
            count = static_trip_count(loop)
            if count is not None:
                info.loops_static += 1
                info.static_trip_counts[loop.loop_id] = count
        info.relevant_library_calls = frozenset(
            routine
            for routine in callgraph.externals_of(fn.name)
            if relevant_library(routine)
        )
        info.is_recursive = fn.name in recursive
        forest = loop_forest(fn)
        info.irreducible = not forest.is_reducible
        if info.is_recursive:
            report.warnings.append(
                f"function '{fn.name}' is recursive: static volume analysis "
                "is over-approximate (paper section 4.1)"
            )
        if info.irreducible:
            report.warnings.append(
                f"function '{fn.name}' has irreducible control flow: "
                "normalize via node splitting before analysis"
            )
        report.functions[fn.name] = info
    return report
