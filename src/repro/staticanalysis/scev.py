"""SCEV-lite: static trip-count resolution for counted loops.

The paper's compile-time phase queries LLVM's ScalarEvolution to find loops
"with constant and statically resolvable trip counts" (section 5.1).  Our
IR's counted ``For`` loops admit the same analysis by constant folding: if
start, stop and step fold to constants, the trip count is
``max(0, ceil((stop - start) / step))``.

``While`` loops never have a statically resolvable count here (matching the
conservative behaviour of the original on loops ScalarEvolution cannot
model).
"""

from __future__ import annotations

import math

from ..ir.expr import BinOp, Const, Expr, Intrinsic, UnOp
from ..ir.stmt import For, Stmt, While


def fold_const(expr: Expr) -> float | None:
    """Constant-fold *expr*; return its value or None if not static."""
    if isinstance(expr, Const):
        return float(expr.value)
    if isinstance(expr, UnOp):
        val = fold_const(expr.operand)
        if val is None:
            return None
        return float(not val) if expr.op == "not" else -val
    if isinstance(expr, BinOp):
        lhs = fold_const(expr.lhs)
        rhs = fold_const(expr.rhs)
        if lhs is None or rhs is None:
            return None
        try:
            return float(_fold_binop(expr.op, lhs, rhs))
        except (ZeroDivisionError, OverflowError, ValueError):
            return None
    if isinstance(expr, Intrinsic):
        if expr.name in ("log2", "sqrt", "abs", "int") and len(expr.args) == 1:
            val = fold_const(expr.args[0])
            if val is None:
                return None
            try:
                if expr.name == "log2":
                    return math.log2(val) if val > 0 else 0.0
                if expr.name == "sqrt":
                    return math.sqrt(val)
                if expr.name == "abs":
                    return abs(val)
                return float(int(val))
            except ValueError:
                return None
    return None


def _fold_binop(op: str, lhs: float, rhs: float) -> float:
    if op == "+":
        return lhs + rhs
    if op == "-":
        return lhs - rhs
    if op == "*":
        return lhs * rhs
    if op == "/":
        return lhs / rhs
    if op == "//":
        return lhs // rhs
    if op == "%":
        return lhs % rhs
    if op == "**":
        return lhs**rhs
    if op == "min":
        return min(lhs, rhs)
    if op == "max":
        return max(lhs, rhs)
    if op == "<":
        return float(lhs < rhs)
    if op == "<=":
        return float(lhs <= rhs)
    if op == ">":
        return float(lhs > rhs)
    if op == ">=":
        return float(lhs >= rhs)
    if op == "==":
        return float(lhs == rhs)
    if op == "!=":
        return float(lhs != rhs)
    if op == "and":
        return rhs if lhs else lhs
    if op == "or":
        return lhs if lhs else rhs
    raise ValueError(op)


def static_trip_count(loop: Stmt) -> int | None:
    """Statically resolved trip count of *loop*, or None.

    Only counted ``For`` loops with fully constant bounds resolve.  A loop
    variable reassigned inside the body invalidates the result, so bodies
    are scanned for assignments to the induction variable.
    """
    if isinstance(loop, While):
        return None
    if not isinstance(loop, For):
        return None
    from ..ir.stmt import Assign, assigned_names

    if loop.var in assigned_names(loop.body):
        return None
    start = fold_const(loop.start)
    stop = fold_const(loop.stop)
    step = fold_const(loop.step)
    if start is None or stop is None or step is None or step <= 0:
        return None
    if stop <= start:
        return 0
    return int(math.ceil((stop - start) / step))


def is_static_loop(loop: Stmt) -> bool:
    """True when the loop's trip count is statically known."""
    return static_trip_count(loop) is not None
