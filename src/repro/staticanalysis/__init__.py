"""Compile-time phase of Perf-Taint (paper section 5.1).

Constant trip-count resolution (SCEV-lite), static function pruning, and
structural warnings (recursion, irreducible control flow).
"""

from .prune import (
    FunctionStaticInfo,
    StaticReport,
    analyze_program,
    default_relevant_library,
)
from .scev import fold_const, is_static_loop, static_trip_count

__all__ = [
    "FunctionStaticInfo",
    "StaticReport",
    "analyze_program",
    "default_relevant_library",
    "fold_const",
    "is_static_loop",
    "static_trip_count",
]
