"""Decorator-based component registries (the Campaign API's plug points).

Experiment frameworks live or die by how new components are added:
benchbuild registers projects and experiments by declaration, not by
editing a central dict.  This module provides the same mechanism for the
six pluggable component kinds of the repro pipeline:

* **workloads** (``@register_workload``) — modelable applications;
* **engines** (``@register_engine``) — execution engines (tree/compiled);
* **noise models** (``@register_noise``) — measurement-noise generators;
* **contention models** (``@register_contention``) — co-location slowdown
  laws;
* **designs** (``@register_design``) — experiment-design strategies;
* **model-search backends** (``@register_model_backend``) — PMNF
  hypothesis-fitting strategies (loop reference vs batched LAPACK).

The bundled components self-register when their defining modules are
imported; :func:`load_builtin_components` imports them all so CLI commands
and :meth:`Campaign.from_spec` always see the full set.  User code
registers its own components with the same decorators **before** invoking
the CLI or building a campaign::

    from repro.registry import register_workload

    @register_workload("mini-fem", params=("p", "n"))
    class MiniFemWorkload: ...

Registered names then appear everywhere the built-ins do: ``repro apps``,
CLI app arguments, and campaign specs.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping

from .errors import RegistryError


@dataclass(frozen=True)
class RegistryEntry:
    """One registered component: its factory plus free-form metadata."""

    name: str
    factory: Callable
    metadata: Mapping[str, object] = field(default_factory=dict)

    @property
    def description(self) -> str:
        """One-line summary (metadata ``help`` or the factory docstring)."""
        doc = self.metadata.get("help") or (self.factory.__doc__ or "")
        return str(doc).strip().splitlines()[0] if str(doc).strip() else ""


class Registry:
    """A named set of factories, populated by decorator."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: dict[str, RegistryEntry] = {}

    # -- registration ---------------------------------------------------

    def register(self, name: str | None = None, **metadata) -> Callable:
        """Decorator registering *factory* under *name*.

        Without arguments the component's ``name`` attribute (or
        ``__name__``) is used.  Usable bare (``@register``) or called
        (``@register("lulesh", params=...)``).  Re-registering a name
        replaces the previous entry (latest wins), so user code can
        override a built-in.
        """
        if callable(name):  # bare @register usage
            factory, name = name, None
            self._add(factory, None, metadata)
            return factory

        def decorate(factory: Callable) -> Callable:
            self._add(factory, name, metadata)
            return factory

        return decorate

    def _add(
        self, factory: Callable, name: str | None, metadata: Mapping
    ) -> None:
        key = name or getattr(factory, "name", None)
        if not isinstance(key, str) or not key:
            key = getattr(factory, "__name__", None)
        if not isinstance(key, str) or not key:
            raise RegistryError(
                f"cannot infer a name for {self.kind} {factory!r}; "
                "pass one explicitly"
            )
        self._entries[key] = RegistryEntry(
            name=key, factory=factory, metadata=dict(metadata)
        )

    # -- lookup -----------------------------------------------------------

    def names(self) -> tuple[str, ...]:
        """All registered names, sorted."""
        return tuple(sorted(self._entries))

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[RegistryEntry]:
        for name in self.names():
            yield self._entries[name]

    def entry(self, name: str) -> RegistryEntry:
        """The entry registered under *name* (raises :class:`RegistryError`
        listing the valid names on a miss)."""
        try:
            return self._entries[name]
        except KeyError:
            valid = ", ".join(self.names()) or "<none registered>"
            raise RegistryError(
                f"unknown {self.kind} {name!r} (valid {self.kind}s: {valid})"
            ) from None

    def get(self, name: str) -> Callable:
        """The factory registered under *name*."""
        return self.entry(name).factory

    def create(self, name: str, *args, **kwargs):
        """Instantiate the component registered under *name*."""
        return self.get(name)(*args, **kwargs)

    def identity(self, name: str) -> str:
        """Stable identity of the registered factory, for fingerprints.

        Includes the factory's import path, not just the registered name:
        re-registering a name with a different implementation ("latest
        wins" overrides) must invalidate artifacts computed by the
        previous one.
        """
        factory = self.get(name)
        module = getattr(factory, "__module__", "?")
        qualname = getattr(
            factory, "__qualname__", getattr(factory, "__name__", "?")
        )
        return f"{name}={module}.{qualname}"


#: Modelable applications (LULESH, MILC, synthetic, user workloads).
WORKLOAD_REGISTRY = Registry("app")
#: Execution engines consumed by :func:`repro.interp.make_engine`.
ENGINE_REGISTRY = Registry("engine")
#: Measurement-noise models.
NOISE_REGISTRY = Registry("noise model")
#: Co-location contention models.
CONTENTION_REGISTRY = Registry("contention model")
#: Experiment-design strategies consumed by the campaign design stage.
DESIGN_REGISTRY = Registry("design strategy")
#: Model-search backends consumed by :class:`repro.modeling.Modeler`
#: (``loop`` reference vs ``batched`` stacked-LAPACK implementation).
MODEL_BACKEND_REGISTRY = Registry("model-search backend")

register_workload = WORKLOAD_REGISTRY.register
register_engine = ENGINE_REGISTRY.register
register_noise = NOISE_REGISTRY.register
register_contention = CONTENTION_REGISTRY.register
register_design = DESIGN_REGISTRY.register
register_model_backend = MODEL_BACKEND_REGISTRY.register


#: Modules whose import populates the registries with bundled components.
_BUILTIN_MODULES = (
    "repro.interp",  # tree + compiled engines
    "repro.measure.noise",  # none + gaussian noise
    "repro.mpisim.contention",  # none/logquad/bandwidth contention
    "repro.core.experiment_design",  # reduced/full-factorial/one-at-a-time
    "repro.modeling.backends",  # loop + batched model-search backends
    "repro.apps.lulesh",
    "repro.apps.milc",
    "repro.apps.synthetic",
)


def load_builtin_components() -> None:
    """Import every bundled component module (idempotent).

    Registration happens at import; callers that accept component *names*
    (the CLI, :meth:`Campaign.from_spec`) invoke this first so the bundled
    workloads/engines/models are always visible alongside user-registered
    ones.
    """
    for module in _BUILTIN_MODULES:
        importlib.import_module(module)


__all__ = [
    "CONTENTION_REGISTRY",
    "DESIGN_REGISTRY",
    "ENGINE_REGISTRY",
    "MODEL_BACKEND_REGISTRY",
    "NOISE_REGISTRY",
    "Registry",
    "RegistryEntry",
    "WORKLOAD_REGISTRY",
    "load_builtin_components",
    "register_contention",
    "register_design",
    "register_engine",
    "register_model_backend",
    "register_noise",
    "register_workload",
]
