"""Statement nodes of the repro IR.

Statements form structured control flow: straight-line assignments, ``If``
branches, counted ``For`` loops, condition-controlled ``While`` loops,
``Break``/``Continue``/``Return``.  Loops and branches carry unique ids
(assigned when a :class:`repro.ir.program.Program` is finalized); the taint
engine uses them as sink identities (paper sections 4.1 and 4.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from .expr import Expr


class Stmt:
    """Base class for all statement nodes."""

    __slots__ = ()

    def children_stmts(self) -> Sequence["Stmt"]:
        """Return nested statements (loop/branch bodies)."""
        return ()

    def exprs(self) -> Sequence[Expr]:
        """Return directly referenced expressions."""
        return ()

    def walk(self) -> Iterator["Stmt"]:
        """Yield this statement and all nested statements in pre-order."""
        yield self
        for child in self.children_stmts():
            yield from child.walk()


@dataclass
class Assign(Stmt):
    """``name = value``."""

    name: str
    value: Expr

    def exprs(self) -> Sequence[Expr]:
        return (self.value,)


@dataclass
class Store(Stmt):
    """``array[index] = value``."""

    array: str
    index: Expr
    value: Expr

    def exprs(self) -> Sequence[Expr]:
        return (self.index, self.value)


@dataclass
class ExprStmt(Stmt):
    """Evaluate an expression for effect (calls, cost intrinsics)."""

    expr: Expr

    def exprs(self) -> Sequence[Expr]:
        return (self.expr,)


@dataclass
class If(Stmt):
    """``if cond: then_body else: else_body``.

    ``branch_id`` is assigned at program finalization and identifies this
    branch in taint sink reports (algorithm-selection detection, paper 4.4).
    """

    cond: Expr
    then_body: list[Stmt] = field(default_factory=list)
    else_body: list[Stmt] = field(default_factory=list)
    branch_id: int = -1

    def children_stmts(self) -> Sequence[Stmt]:
        return tuple(self.then_body) + tuple(self.else_body)

    def exprs(self) -> Sequence[Expr]:
        return (self.cond,)


@dataclass
class For(Stmt):
    """Counted loop ``for var = start; var < stop; var += step``.

    ``step`` must evaluate to a positive number at run time.  ``loop_id`` is
    assigned at program finalization; the pair (function, loop_id) is a taint
    sink identity.
    """

    var: str
    start: Expr
    stop: Expr
    step: Expr
    body: list[Stmt] = field(default_factory=list)
    loop_id: int = -1

    def children_stmts(self) -> Sequence[Stmt]:
        return tuple(self.body)

    def exprs(self) -> Sequence[Expr]:
        return (self.start, self.stop, self.step)


@dataclass
class While(Stmt):
    """Condition-controlled loop ``while cond: body``."""

    cond: Expr
    body: list[Stmt] = field(default_factory=list)
    loop_id: int = -1

    def children_stmts(self) -> Sequence[Stmt]:
        return tuple(self.body)

    def exprs(self) -> Sequence[Expr]:
        return (self.cond,)


@dataclass
class Break(Stmt):
    """Exit the innermost enclosing loop."""


@dataclass
class Continue(Stmt):
    """Skip to the next iteration of the innermost enclosing loop."""


@dataclass
class Return(Stmt):
    """Return from the current function (optionally with a value)."""

    value: Expr | None = None

    def exprs(self) -> Sequence[Expr]:
        return (self.value,) if self.value is not None else ()


def iter_loops(body: Sequence[Stmt]) -> Iterator[Stmt]:
    """Yield every ``For``/``While`` statement nested anywhere in *body*."""
    for stmt in body:
        for node in stmt.walk():
            if isinstance(node, (For, While)):
                yield node


def iter_branches(body: Sequence[Stmt]) -> Iterator[If]:
    """Yield every ``If`` statement nested anywhere in *body*."""
    for stmt in body:
        for node in stmt.walk():
            if isinstance(node, If):
                yield node


def assigned_names(body: Sequence[Stmt]) -> frozenset[str]:
    """Names assigned (scalar or array element) anywhere in *body*.

    Used by the taint engine's optional implicit-flow mode: when a tainted
    branch is *not* taken, variables that the skipped body would have
    assigned still carry an implicit dependence on the branch condition
    (paper section 3.2, label ``c`` example).
    """
    names: set[str] = set()
    for stmt in body:
        for node in stmt.walk():
            if isinstance(node, Assign):
                names.add(node.name)
            elif isinstance(node, Store):
                names.add(node.array)
            elif isinstance(node, For):
                names.add(node.var)
    return frozenset(names)
