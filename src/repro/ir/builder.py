"""Fluent construction helpers for the repro IR.

Two layers:

* module-level expression helpers (``const``, ``var``, ``add`` ...) that
  coerce Python numbers into :class:`~repro.ir.expr.Const` automatically;
* :class:`FunctionBuilder` / :class:`ProgramBuilder`, context-manager based
  builders for structured statements::

      pb = ProgramBuilder()
      with pb.function("kernel", ["n"]) as f:
          with f.for_("i", 0, f.var("n")):
              f.work(10)
      program = pb.build(entry="kernel")
"""

from __future__ import annotations

from types import TracebackType
from typing import Sequence, Union

from ..errors import IRError
from .expr import BinOp, Call, Const, Expr, Intrinsic, Load, Number, UnOp, Var
from .program import Function, Program
from .stmt import (
    Assign,
    Break,
    Continue,
    ExprStmt,
    For,
    If,
    Return,
    Stmt,
    Store,
    While,
)

ExprLike = Union[Expr, Number]


def as_expr(value: ExprLike) -> Expr:
    """Coerce a Python number (or pass through an Expr) into an Expr."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, (int, float, bool)):
        return Const(value)
    raise IRError(f"cannot convert {value!r} to an expression")


# ----------------------------------------------------------------------
# expression helpers


def const(value: Number) -> Const:
    """Literal constant."""
    return Const(value)


def var(name: str) -> Var:
    """Variable read."""
    return Var(name)


def binop(op: str, lhs: ExprLike, rhs: ExprLike) -> BinOp:
    """Generic binary operation."""
    return BinOp(op, as_expr(lhs), as_expr(rhs))


def add(lhs: ExprLike, rhs: ExprLike) -> BinOp:
    return binop("+", lhs, rhs)


def sub(lhs: ExprLike, rhs: ExprLike) -> BinOp:
    return binop("-", lhs, rhs)


def mul(lhs: ExprLike, rhs: ExprLike) -> BinOp:
    return binop("*", lhs, rhs)


def div(lhs: ExprLike, rhs: ExprLike) -> BinOp:
    return binop("/", lhs, rhs)


def floordiv(lhs: ExprLike, rhs: ExprLike) -> BinOp:
    return binop("//", lhs, rhs)


def mod(lhs: ExprLike, rhs: ExprLike) -> BinOp:
    return binop("%", lhs, rhs)


def pow_(lhs: ExprLike, rhs: ExprLike) -> BinOp:
    return binop("**", lhs, rhs)


def lt(lhs: ExprLike, rhs: ExprLike) -> BinOp:
    return binop("<", lhs, rhs)


def le(lhs: ExprLike, rhs: ExprLike) -> BinOp:
    return binop("<=", lhs, rhs)


def gt(lhs: ExprLike, rhs: ExprLike) -> BinOp:
    return binop(">", lhs, rhs)


def ge(lhs: ExprLike, rhs: ExprLike) -> BinOp:
    return binop(">=", lhs, rhs)


def eq(lhs: ExprLike, rhs: ExprLike) -> BinOp:
    return binop("==", lhs, rhs)


def ne(lhs: ExprLike, rhs: ExprLike) -> BinOp:
    return binop("!=", lhs, rhs)


def and_(lhs: ExprLike, rhs: ExprLike) -> BinOp:
    return binop("and", lhs, rhs)


def or_(lhs: ExprLike, rhs: ExprLike) -> BinOp:
    return binop("or", lhs, rhs)


def min_(lhs: ExprLike, rhs: ExprLike) -> BinOp:
    return binop("min", lhs, rhs)


def max_(lhs: ExprLike, rhs: ExprLike) -> BinOp:
    return binop("max", lhs, rhs)


def neg(operand: ExprLike) -> UnOp:
    return UnOp("-", as_expr(operand))


def not_(operand: ExprLike) -> UnOp:
    return UnOp("not", as_expr(operand))


def load(array: str, index: ExprLike) -> Load:
    """Array element read."""
    return Load(array, as_expr(index))


def call(callee: str, *args: ExprLike) -> Call:
    """Call expression."""
    return Call(callee, tuple(as_expr(a) for a in args))


def intrinsic(name: str, *args: ExprLike) -> Intrinsic:
    """Generic intrinsic expression."""
    return Intrinsic(name, tuple(as_expr(a) for a in args))


def work(amount: ExprLike) -> Intrinsic:
    """Compute-bound cost sink: consumes ``amount`` simulated cost units."""
    return intrinsic("work", amount)


def mem_work(amount: ExprLike) -> Intrinsic:
    """Memory-bound cost sink: like ``work`` but subject to the
    rank-per-node contention factor (paper section C1)."""
    return intrinsic("mem_work", amount)


def log2(x: ExprLike) -> Intrinsic:
    return intrinsic("log2", x)


def sqrt(x: ExprLike) -> Intrinsic:
    return intrinsic("sqrt", x)


# ----------------------------------------------------------------------
# statement builders


class _BlockCtx:
    """Context manager pushing a statement list on a FunctionBuilder."""

    def __init__(self, fb: "FunctionBuilder", block: list[Stmt]) -> None:
        self._fb = fb
        self._block = block

    def __enter__(self) -> "FunctionBuilder":
        self._fb._stack.append(self._block)
        return self._fb

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        popped = self._fb._stack.pop()
        if popped is not self._block:  # pragma: no cover - defensive
            raise IRError("builder block stack corrupted")


class FunctionBuilder:
    """Builds one function's statement body via nested ``with`` blocks."""

    def __init__(self, name: str, params: Sequence[str] = (), kind: str = "") -> None:
        self.name = name
        self.params = tuple(params)
        self.kind = kind
        self._body: list[Stmt] = []
        self._stack: list[list[Stmt]] = [self._body]

    # -- expression passthroughs so builders are self-contained ---------

    @staticmethod
    def var(name: str) -> Var:
        return Var(name)

    @staticmethod
    def const(value: Number) -> Const:
        return Const(value)

    # -- statement emission ---------------------------------------------

    def _emit(self, stmt: Stmt) -> Stmt:
        self._stack[-1].append(stmt)
        return stmt

    def assign(self, name: str, value: ExprLike) -> Stmt:
        """Emit ``name = value``."""
        return self._emit(Assign(name, as_expr(value)))

    def store(self, array: str, index: ExprLike, value: ExprLike) -> Stmt:
        """Emit ``array[index] = value``."""
        return self._emit(Store(array, as_expr(index), as_expr(value)))

    def expr(self, expression: ExprLike) -> Stmt:
        """Emit an expression statement."""
        return self._emit(ExprStmt(as_expr(expression)))

    def call(self, callee: str, *args: ExprLike) -> Stmt:
        """Emit a call-for-effect statement."""
        return self.expr(call(callee, *args))

    def work(self, amount: ExprLike) -> Stmt:
        """Emit a compute-bound cost sink."""
        return self.expr(work(amount))

    def mem_work(self, amount: ExprLike) -> Stmt:
        """Emit a memory-bound cost sink."""
        return self.expr(mem_work(amount))

    def alloc(self, name: str, size: ExprLike) -> Stmt:
        """Emit an array allocation ``name = alloc(size)``."""
        return self._emit(Assign(name, intrinsic("alloc", size)))

    def ret(self, value: ExprLike | None = None) -> Stmt:
        """Emit a return statement."""
        return self._emit(Return(as_expr(value) if value is not None else None))

    def brk(self) -> Stmt:
        """Emit ``break``."""
        return self._emit(Break())

    def cont(self) -> Stmt:
        """Emit ``continue``."""
        return self._emit(Continue())

    # -- structured blocks ------------------------------------------------

    def for_(
        self,
        loop_var: str,
        start: ExprLike,
        stop: ExprLike,
        step: ExprLike = 1,
    ) -> _BlockCtx:
        """Open a counted loop block."""
        loop = For(loop_var, as_expr(start), as_expr(stop), as_expr(step))
        self._emit(loop)
        return _BlockCtx(self, loop.body)

    def while_(self, cond: ExprLike) -> _BlockCtx:
        """Open a while-loop block."""
        loop = While(as_expr(cond))
        self._emit(loop)
        return _BlockCtx(self, loop.body)

    def if_(self, cond: ExprLike) -> _BlockCtx:
        """Open an if-block; pair with :meth:`else_` for the other branch."""
        branch = If(as_expr(cond))
        self._emit(branch)
        self._last_if = branch
        return _BlockCtx(self, branch.then_body)

    def else_(self) -> _BlockCtx:
        """Open the else-block of the most recent :meth:`if_`."""
        branch = getattr(self, "_last_if", None)
        if branch is None:
            raise IRError("else_ without a preceding if_")
        return _BlockCtx(self, branch.else_body)

    def build(self) -> Function:
        """Produce the immutable Function."""
        if len(self._stack) != 1:
            raise IRError(f"unclosed blocks in function '{self.name}'")
        return Function(self.name, self.params, self._body, kind=self.kind)


class ProgramBuilder:
    """Accumulates functions and produces a finalized Program."""

    def __init__(self) -> None:
        self._functions: list[Function] = []
        self._pending: FunctionBuilder | None = None
        self.metadata: dict[str, object] = {}

    def function(
        self, name: str, params: Sequence[str] = (), kind: str = ""
    ) -> "_FunctionCtx":
        """Open a function-definition block."""
        return _FunctionCtx(self, FunctionBuilder(name, params, kind))

    def add(self, fn: Function) -> None:
        """Add an already-built function."""
        self._functions.append(fn)

    def build(self, entry: str) -> Program:
        """Finalize into a Program with the given entry point."""
        return Program.build(self._functions, entry, self.metadata)


class _FunctionCtx:
    def __init__(self, pb: ProgramBuilder, fb: FunctionBuilder) -> None:
        self._pb = pb
        self._fb = fb

    def __enter__(self) -> FunctionBuilder:
        return self._fb

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        if exc_type is None:
            self._pb.add(self._fb.build())
