"""Expression nodes of the repro IR.

The IR is a small, structured, imperative language that stands in for the
LLVM IR used by the original Perf-Taint prototype.  Expressions are immutable
trees; statements (:mod:`repro.ir.stmt`) reference them.  Every node supports
``free_vars()`` (the set of variable names read) and structural equality,
which the analyses and the interpreter fast paths rely on.

Supported expression forms:

``Const``
    Literal int/float/bool.
``Var``
    Variable read.
``BinOp`` / ``UnOp``
    Arithmetic, comparison and logical operators.
``Load``
    Array element read ``a[i]``.
``Call``
    Call to a program function *or* a library routine (``MPI_*``).
``Intrinsic``
    Built-in operations with runtime support: cost sinks (``work``,
    ``mem_work``), math helpers (``log2``, ``pow``, ``sqrt``, ``min``,
    ``max``, ``floordiv``) and ``alloc`` for arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence, Union

Number = Union[int, float, bool]

#: Binary operators understood by the interpreter.
BINARY_OPS = frozenset(
    {
        "+",
        "-",
        "*",
        "/",
        "//",
        "%",
        "<",
        "<=",
        ">",
        ">=",
        "==",
        "!=",
        "and",
        "or",
        "min",
        "max",
        "**",
    }
)

#: Unary operators understood by the interpreter.
UNARY_OPS = frozenset({"-", "not"})

#: Intrinsics with runtime support.  ``work``/``mem_work`` are the cost sinks
#: of the discrete-cost simulator (compute-bound and memory-bound volume,
#: respectively); the rest are pure math helpers.
INTRINSICS = frozenset(
    {
        "work",
        "mem_work",
        "log2",
        "sqrt",
        "abs",
        "int",
        "alloc",
    }
)

#: Intrinsics that consume simulated time.
COST_INTRINSICS = frozenset({"work", "mem_work"})


class Expr:
    """Base class for all expression nodes."""

    __slots__ = ()

    def free_vars(self) -> frozenset[str]:
        """Return the set of variable names read by this expression."""
        raise NotImplementedError

    def children(self) -> Sequence["Expr"]:
        """Return direct sub-expressions (for generic walkers)."""
        raise NotImplementedError

    def walk(self) -> Iterator["Expr"]:
        """Yield this node and all descendants in pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()


@dataclass(frozen=True)
class Const(Expr):
    """A literal constant."""

    value: Number

    def free_vars(self) -> frozenset[str]:
        return frozenset()

    def children(self) -> Sequence[Expr]:
        return ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Const({self.value!r})"


@dataclass(frozen=True)
class Var(Expr):
    """A variable read."""

    name: str

    def free_vars(self) -> frozenset[str]:
        return frozenset({self.name})

    def children(self) -> Sequence[Expr]:
        return ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Var({self.name!r})"


@dataclass(frozen=True)
class BinOp(Expr):
    """A binary operation ``lhs op rhs``."""

    op: str
    lhs: Expr
    rhs: Expr

    def __post_init__(self) -> None:
        if self.op not in BINARY_OPS:
            raise ValueError(f"unknown binary operator {self.op!r}")

    def free_vars(self) -> frozenset[str]:
        return self.lhs.free_vars() | self.rhs.free_vars()

    def children(self) -> Sequence[Expr]:
        return (self.lhs, self.rhs)


@dataclass(frozen=True)
class UnOp(Expr):
    """A unary operation ``op operand``."""

    op: str
    operand: Expr

    def __post_init__(self) -> None:
        if self.op not in UNARY_OPS:
            raise ValueError(f"unknown unary operator {self.op!r}")

    def free_vars(self) -> frozenset[str]:
        return self.operand.free_vars()

    def children(self) -> Sequence[Expr]:
        return (self.operand,)


@dataclass(frozen=True)
class Load(Expr):
    """An array element read ``array[index]``."""

    array: str
    index: Expr

    def free_vars(self) -> frozenset[str]:
        return frozenset({self.array}) | self.index.free_vars()

    def children(self) -> Sequence[Expr]:
        return (self.index,)


@dataclass(frozen=True)
class Call(Expr):
    """A call to a program function or a library routine.

    The callee is resolved at run time: program functions take precedence,
    then the library database (``MPI_*`` and friends).  Calls may appear as
    expressions (value used) or wrapped in ``ExprStmt`` (value discarded).
    """

    callee: str
    args: tuple[Expr, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "args", tuple(self.args))

    def free_vars(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for a in self.args:
            out |= a.free_vars()
        return out

    def children(self) -> Sequence[Expr]:
        return self.args


@dataclass(frozen=True)
class Intrinsic(Expr):
    """A built-in operation with direct runtime support."""

    name: str
    args: tuple[Expr, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.name not in INTRINSICS:
            raise ValueError(f"unknown intrinsic {self.name!r}")
        object.__setattr__(self, "args", tuple(self.args))

    def free_vars(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for a in self.args:
            out |= a.free_vars()
        return out

    def children(self) -> Sequence[Expr]:
        return self.args

    @property
    def is_cost(self) -> bool:
        """True if this intrinsic consumes simulated time."""
        return self.name in COST_INTRINSICS
