"""Dominator analysis over CFGs.

Implements the Cooper–Harvey–Kennedy iterative algorithm ("A Simple, Fast
Dominance Algorithm").  Dominators are the substrate of natural-loop
detection (:mod:`repro.ir.loops`): an edge ``u -> v`` is a back edge iff
``v`` dominates ``u``, and every natural loop in the paper's sense is the
body of such a back edge.
"""

from __future__ import annotations

from .cfg import CFG


def _reverse_postorder(cfg: CFG) -> list[int]:
    """Reverse postorder over reachable blocks, starting at the entry."""
    seen: set[int] = set()
    order: list[int] = []

    # Iterative DFS with an explicit stack to avoid recursion limits on the
    # large generated workloads (hundreds of functions, deep nests).
    stack: list[tuple[int, int]] = [(cfg.entry, 0)]
    seen.add(cfg.entry)
    while stack:
        bid, idx = stack[-1]
        succs = cfg.blocks[bid].succs
        if idx < len(succs):
            stack[-1] = (bid, idx + 1)
            nxt = succs[idx]
            if nxt not in seen:
                seen.add(nxt)
                stack.append((nxt, 0))
        else:
            order.append(bid)
            stack.pop()
    order.reverse()
    return order


def immediate_dominators(cfg: CFG) -> dict[int, int]:
    """Map each reachable block to its immediate dominator.

    The entry maps to itself.  Unreachable blocks are omitted.
    """
    rpo = _reverse_postorder(cfg)
    index = {bid: i for i, bid in enumerate(rpo)}
    preds: dict[int, list[int]] = {bid: [] for bid in rpo}
    for bid in rpo:
        for succ in cfg.blocks[bid].succs:
            if succ in index:
                preds[succ].append(bid)

    idom: dict[int, int] = {cfg.entry: cfg.entry}

    def intersect(a: int, b: int) -> int:
        while a != b:
            while index[a] > index[b]:
                a = idom[a]
            while index[b] > index[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for bid in rpo:
            if bid == cfg.entry:
                continue
            candidates = [p for p in preds[bid] if p in idom]
            if not candidates:
                continue
            new_idom = candidates[0]
            for p in candidates[1:]:
                new_idom = intersect(new_idom, p)
            if idom.get(bid) != new_idom:
                idom[bid] = new_idom
                changed = True
    return idom


def dominators(cfg: CFG) -> dict[int, frozenset[int]]:
    """Map each reachable block to its full dominator set (including itself)."""
    idom = immediate_dominators(cfg)
    out: dict[int, frozenset[int]] = {}
    for bid in idom:
        doms = {bid}
        cur = bid
        while cur != cfg.entry:
            cur = idom[cur]
            doms.add(cur)
        out[bid] = frozenset(doms)
    return out


def dominates(idom: dict[int, int], entry: int, a: int, b: int) -> bool:
    """True iff block *a* dominates block *b* (per *idom* from *entry*)."""
    cur = b
    while True:
        if cur == a:
            return True
        if cur == entry:
            return a == entry
        nxt = idom.get(cur)
        if nxt is None or nxt == cur:
            return a == cur
        cur = nxt
