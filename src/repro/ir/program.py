"""Functions and programs.

A :class:`Program` is a set of named :class:`Function` objects plus an entry
point.  Finalizing a program assigns stable ids to every loop and branch,
builds the call graph, and validates structure.  Analyses
(:mod:`repro.staticanalysis`, :mod:`repro.ir.cfg`, ...) and the interpreters
all operate on finalized programs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from ..errors import IRError
from .expr import Call, Expr
from .stmt import For, If, Stmt, While, iter_branches, iter_loops


@dataclass
class Function:
    """A named function with positional parameters and a statement body.

    ``kind`` is free-form metadata used by the workloads and the evaluation
    harness to categorize functions the way Table 2 of the paper does:
    ``"kernel"`` (computational kernel), ``"comm"`` (communication routine),
    ``"accessor"`` (tiny constant helper, e.g. C++ getters), or ``""``.
    """

    name: str
    params: tuple[str, ...]
    body: list[Stmt]
    kind: str = ""

    def __post_init__(self) -> None:
        self.params = tuple(self.params)
        if len(set(self.params)) != len(self.params):
            raise IRError(f"function '{self.name}' has duplicate parameters")

    def loops(self) -> list[Stmt]:
        """All ``For``/``While`` statements in this function (pre-order)."""
        return list(iter_loops(self.body))

    def branches(self) -> list[If]:
        """All ``If`` statements in this function (pre-order)."""
        return list(iter_branches(self.body))

    def statements(self) -> Iterator[Stmt]:
        """All statements in this function, pre-order."""
        for stmt in self.body:
            yield from stmt.walk()

    def callees(self) -> frozenset[str]:
        """Names of all functions called (textually) by this function."""
        names: set[str] = set()
        for stmt in self.statements():
            for expr in stmt.exprs():
                for node in expr.walk():
                    if isinstance(node, Call):
                        names.add(node.callee)
        return frozenset(names)


@dataclass
class Program:
    """A finalized, analyzable program.

    Construct via :meth:`Program.build`, which assigns loop and branch ids
    and validates the result, or via :class:`repro.ir.builder.ProgramBuilder`.
    """

    functions: dict[str, Function]
    entry: str
    metadata: dict[str, object] = field(default_factory=dict)
    _finalized: bool = field(default=False, repr=False)

    @classmethod
    def build(
        cls,
        functions: Iterable[Function],
        entry: str,
        metadata: Mapping[str, object] | None = None,
    ) -> "Program":
        """Create and finalize a program from *functions* with *entry*."""
        table: dict[str, Function] = {}
        for fn in functions:
            if fn.name in table:
                raise IRError(f"duplicate function '{fn.name}'")
            table[fn.name] = fn
        prog = cls(table, entry, dict(metadata or {}))
        prog.finalize()
        return prog

    # ------------------------------------------------------------------
    # finalization

    def finalize(self) -> "Program":
        """Assign loop/branch ids and validate the program.

        Loop ids are unique per function and stable across runs, so the
        pair ``(function_name, loop_id)`` identifies a taint sink exactly as
        (module, loop header) does in the LLVM-based original.
        """
        if self.entry not in self.functions:
            raise IRError(f"entry function '{self.entry}' not defined")
        for fn in self.functions.values():
            loop_id = 0
            for loop in iter_loops(fn.body):
                assert isinstance(loop, (For, While))
                loop.loop_id = loop_id
                loop_id += 1
            branch_id = 0
            for branch in iter_branches(fn.body):
                branch.branch_id = branch_id
                branch_id += 1
        from .validate import validate_program

        validate_program(self)
        self._finalized = True
        return self

    # ------------------------------------------------------------------
    # queries

    def function(self, name: str) -> Function:
        """Look up a function by name, raising ``IRError`` if missing."""
        try:
            return self.functions[name]
        except KeyError:
            raise IRError(f"no function named '{name}'") from None

    def defined_names(self) -> frozenset[str]:
        """Names of all program-defined functions."""
        return frozenset(self.functions)

    def external_callees(self) -> frozenset[str]:
        """Callee names not defined in the program (library routines)."""
        out: set[str] = set()
        for fn in self.functions.values():
            out |= set(fn.callees()) - set(self.functions)
        return frozenset(out)

    def loop_count(self) -> int:
        """Total number of loops across all functions (Table 2 'Loops')."""
        return sum(len(fn.loops()) for fn in self.functions.values())

    def function_count(self) -> int:
        """Total number of defined functions (Table 2 'Functions')."""
        return len(self.functions)

    def loops_of(self, name: str) -> list[Stmt]:
        """Loops of function *name* in loop-id order."""
        return self.function(name).loops()

    def __contains__(self, name: str) -> bool:
        return name in self.functions

    def __iter__(self) -> Iterator[Function]:
        return iter(self.functions.values())
