"""Control-flow graph construction.

The structured IR is lowered into a classic basic-block CFG so that the
natural-loop machinery from the paper (section 4.1, footnote 2: "our analysis
computes how potential input parameters affect the iteration counts of all
natural loops") runs on the same abstraction as the LLVM original:
dominators, back edges, natural loops, reducibility.

Lowering rules:

* ``If`` becomes a condition block with a two-way terminator;
* ``For`` becomes init block -> header (condition) -> body ... -> latch
  (increment) -> header, exit edge from the header;
* ``While`` becomes header (condition) -> body ... -> header;
* ``Break``/``Continue``/``Return`` terminate their block with jumps to the
  loop exit / loop latch (or header) / the function exit block.

Header blocks record the AST ``loop_id`` so CFG-level loop analyses can be
mapped back to taint sinks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..errors import IRError
from .expr import Expr
from .program import Function
from .stmt import (
    Assign,
    Break,
    Continue,
    ExprStmt,
    For,
    If,
    Return,
    Stmt,
    Store,
    While,
)


@dataclass
class BasicBlock:
    """A straight-line sequence of simple statements plus a terminator.

    ``succs`` lists successor block ids.  ``kind`` tags structurally
    meaningful blocks: ``"entry"``, ``"exit"``, ``"loop_header"``,
    ``"latch"``, ``"cond"`` or ``""``.
    """

    bid: int
    stmts: list[Stmt] = field(default_factory=list)
    succs: list[int] = field(default_factory=list)
    kind: str = ""
    #: AST loop id when kind == "loop_header", else -1.
    loop_id: int = -1
    #: Condition expression for loop headers / cond blocks, else None.
    cond: Expr | None = None


@dataclass
class CFG:
    """Control-flow graph of one function."""

    function: str
    blocks: dict[int, BasicBlock]
    entry: int
    exit: int

    def preds(self, bid: int) -> list[int]:
        """Predecessor block ids of *bid* (computed on demand)."""
        return [b.bid for b in self.blocks.values() if bid in b.succs]

    def edges(self) -> list[tuple[int, int]]:
        """All (src, dst) edges."""
        out: list[tuple[int, int]] = []
        for block in self.blocks.values():
            for succ in block.succs:
                out.append((block.bid, succ))
        return out

    def reachable(self) -> frozenset[int]:
        """Block ids reachable from the entry."""
        seen: set[int] = set()
        stack = [self.entry]
        while stack:
            bid = stack.pop()
            if bid in seen:
                continue
            seen.add(bid)
            stack.extend(self.blocks[bid].succs)
        return frozenset(seen)


class _Lowerer:
    """Stateful structured-AST -> CFG lowering."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.blocks: dict[int, BasicBlock] = {}
        self._next = 0
        self.entry = self._new("entry").bid
        self.exit = self._new("exit").bid
        # (continue_target, break_target) per enclosing loop
        self._loop_stack: list[tuple[int, int]] = []

    def _new(self, kind: str = "") -> BasicBlock:
        block = BasicBlock(self._next, kind=kind)
        self.blocks[self._next] = block
        self._next += 1
        return block

    def _link(self, src: int, dst: int) -> None:
        succs = self.blocks[src].succs
        if dst not in succs:
            succs.append(dst)

    def lower(self, body: Sequence[Stmt]) -> CFG:
        """Lower a function body, returning the finished CFG."""
        last = self._lower_block(body, self.entry)
        if last is not None:
            self._link(last, self.exit)
        return CFG(self.name, self.blocks, self.entry, self.exit)

    def _lower_block(self, body: Sequence[Stmt], current: int) -> int | None:
        """Lower statements into *current*; return the open trailing block
        (or None if control never falls through)."""
        cur: int | None = current
        for stmt in body:
            if cur is None:
                # unreachable code after break/continue/return: still lower
                # it into a fresh dangling block so analyses can warn.
                cur = self._new().bid
            cur = self._lower_stmt(stmt, cur)
        return cur

    def _lower_stmt(self, stmt: Stmt, cur: int) -> int | None:
        if isinstance(stmt, (Assign, Store, ExprStmt)):
            self.blocks[cur].stmts.append(stmt)
            return cur
        if isinstance(stmt, Return):
            self.blocks[cur].stmts.append(stmt)
            self._link(cur, self.exit)
            return None
        if isinstance(stmt, Break):
            if not self._loop_stack:
                raise IRError(f"'break' outside loop in function '{self.name}'")
            self._link(cur, self._loop_stack[-1][1])
            return None
        if isinstance(stmt, Continue):
            if not self._loop_stack:
                raise IRError(f"'continue' outside loop in function '{self.name}'")
            self._link(cur, self._loop_stack[-1][0])
            return None
        if isinstance(stmt, If):
            cond_block = self.blocks[cur]
            cond_block.stmts.append(ExprStmt(stmt.cond))
            then_entry = self._new().bid
            else_entry = self._new().bid
            join = self._new().bid
            self._link(cur, then_entry)
            self._link(cur, else_entry)
            then_exit = self._lower_block(stmt.then_body, then_entry)
            else_exit = self._lower_block(stmt.else_body, else_entry)
            if then_exit is not None:
                self._link(then_exit, join)
            if else_exit is not None:
                self._link(else_exit, join)
            return join
        if isinstance(stmt, While):
            header = self._new("loop_header")
            header.loop_id = stmt.loop_id
            header.cond = stmt.cond
            body_entry = self._new().bid
            exit_block = self._new().bid
            self._link(cur, header.bid)
            self._link(header.bid, body_entry)
            self._link(header.bid, exit_block)
            self._loop_stack.append((header.bid, exit_block))
            body_exit = self._lower_block(stmt.body, body_entry)
            self._loop_stack.pop()
            if body_exit is not None:
                self.blocks[body_exit].kind = self.blocks[body_exit].kind or "latch"
                self._link(body_exit, header.bid)
            return exit_block
        if isinstance(stmt, For):
            init = self.blocks[cur]
            init.stmts.append(Assign(stmt.var, stmt.start))
            header = self._new("loop_header")
            header.loop_id = stmt.loop_id
            from .expr import BinOp, Var

            header.cond = BinOp("<", Var(stmt.var), stmt.stop)
            body_entry = self._new().bid
            latch = self._new("latch")
            latch.stmts.append(
                Assign(stmt.var, BinOp("+", Var(stmt.var), stmt.step))
            )
            exit_block = self._new().bid
            self._link(cur, header.bid)
            self._link(header.bid, body_entry)
            self._link(header.bid, exit_block)
            self._link(latch.bid, header.bid)
            self._loop_stack.append((latch.bid, exit_block))
            body_exit = self._lower_block(stmt.body, body_entry)
            self._loop_stack.pop()
            if body_exit is not None:
                self._link(body_exit, latch.bid)
            return exit_block
        raise IRError(f"cannot lower statement {type(stmt).__name__}")


def build_cfg(fn: Function) -> CFG:
    """Lower *fn* into a basic-block control-flow graph."""
    return _Lowerer(fn.name).lower(fn.body)
