"""Human-readable pretty printer for the repro IR.

Programs print as a pseudo-C dialect, which makes taint reports and test
failures legible.  The printer is purely cosmetic — no analysis depends on
its output — but round stability (same program, same text) is tested.
"""

from __future__ import annotations

from .expr import BinOp, Call, Const, Expr, Intrinsic, Load, UnOp, Var
from .program import Function, Program
from .stmt import (
    Assign,
    Break,
    Continue,
    ExprStmt,
    For,
    If,
    Return,
    Stmt,
    Store,
    While,
)

_PRECEDENCE = {
    "or": 1,
    "and": 2,
    "==": 3,
    "!=": 3,
    "<": 4,
    "<=": 4,
    ">": 4,
    ">=": 4,
    "+": 5,
    "-": 5,
    "*": 6,
    "/": 6,
    "//": 6,
    "%": 6,
    "**": 7,
    "min": 8,
    "max": 8,
}


def format_expr(expr: Expr, parent_prec: int = 0) -> str:
    """Render *expr* with minimal parentheses."""
    if isinstance(expr, Const):
        return repr(expr.value)
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, Load):
        return f"{expr.array}[{format_expr(expr.index)}]"
    if isinstance(expr, Call):
        args = ", ".join(format_expr(a) for a in expr.args)
        return f"{expr.callee}({args})"
    if isinstance(expr, Intrinsic):
        args = ", ".join(format_expr(a) for a in expr.args)
        return f"@{expr.name}({args})"
    if isinstance(expr, UnOp):
        inner = format_expr(expr.operand, 9)
        return f"(not {inner})" if expr.op == "not" else f"(-{inner})"
    if isinstance(expr, BinOp):
        prec = _PRECEDENCE[expr.op]
        if expr.op in ("min", "max"):
            return (
                f"{expr.op}({format_expr(expr.lhs)}, {format_expr(expr.rhs)})"
            )
        text = (
            f"{format_expr(expr.lhs, prec)} {expr.op} "
            f"{format_expr(expr.rhs, prec + 1)}"
        )
        return f"({text})" if prec < parent_prec else text
    raise TypeError(f"unknown expression {type(expr).__name__}")


def _fmt_block(body: list[Stmt], indent: int) -> list[str]:
    pad = "  " * indent
    lines: list[str] = []
    for stmt in body:
        lines.extend(_fmt_stmt(stmt, indent))
    if not body:
        lines.append(f"{pad}pass")
    return lines


def _fmt_stmt(stmt: Stmt, indent: int) -> list[str]:
    pad = "  " * indent
    if isinstance(stmt, Assign):
        return [f"{pad}{stmt.name} = {format_expr(stmt.value)}"]
    if isinstance(stmt, Store):
        return [
            f"{pad}{stmt.array}[{format_expr(stmt.index)}] = "
            f"{format_expr(stmt.value)}"
        ]
    if isinstance(stmt, ExprStmt):
        return [f"{pad}{format_expr(stmt.expr)}"]
    if isinstance(stmt, Return):
        if stmt.value is None:
            return [f"{pad}return"]
        return [f"{pad}return {format_expr(stmt.value)}"]
    if isinstance(stmt, Break):
        return [f"{pad}break"]
    if isinstance(stmt, Continue):
        return [f"{pad}continue"]
    if isinstance(stmt, If):
        lines = [f"{pad}if {format_expr(stmt.cond)}:  # branch {stmt.branch_id}"]
        lines.extend(_fmt_block(stmt.then_body, indent + 1))
        if stmt.else_body:
            lines.append(f"{pad}else:")
            lines.extend(_fmt_block(stmt.else_body, indent + 1))
        return lines
    if isinstance(stmt, For):
        head = (
            f"{pad}for {stmt.var} in [{format_expr(stmt.start)} : "
            f"{format_expr(stmt.stop)} : {format_expr(stmt.step)}]:"
            f"  # loop {stmt.loop_id}"
        )
        return [head] + _fmt_block(stmt.body, indent + 1)
    if isinstance(stmt, While):
        head = f"{pad}while {format_expr(stmt.cond)}:  # loop {stmt.loop_id}"
        return [head] + _fmt_block(stmt.body, indent + 1)
    raise TypeError(f"unknown statement {type(stmt).__name__}")


def format_function(fn: Function) -> str:
    """Render one function."""
    kind = f"  # kind={fn.kind}" if fn.kind else ""
    head = f"def {fn.name}({', '.join(fn.params)}):{kind}"
    return "\n".join([head] + _fmt_block(fn.body, 1))


def format_program(program: Program) -> str:
    """Render a whole program, entry function first."""
    order = [program.entry] + sorted(
        name for name in program.functions if name != program.entry
    )
    parts = [format_function(program.functions[name]) for name in order]
    return "\n\n".join(parts) + "\n"
