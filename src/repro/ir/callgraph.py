"""Call-graph construction and recursion detection.

The volume calculus (paper section 4.3) accumulates loop nests across the
call tree and is only sound for non-recursive programs; the taint engine
warns when recursion is present (section 4.1).  The call graph also feeds
the static pruning phase, which must propagate "affected by parameters"
facts from callees to callers.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from ..errors import IRError
from .program import Program


@dataclass
class CallGraph:
    """Directed call graph over the functions of one program.

    Nodes are program-defined function names.  Calls to external (library)
    routines are recorded separately in ``external_calls`` since they are
    resolved through the library database, not the program.
    """

    graph: nx.DiGraph
    external_calls: dict[str, frozenset[str]]

    def callees(self, name: str) -> frozenset[str]:
        """Program-defined functions called by *name*."""
        return frozenset(self.graph.successors(name))

    def callers(self, name: str) -> frozenset[str]:
        """Program-defined functions that call *name*."""
        return frozenset(self.graph.predecessors(name))

    def externals_of(self, name: str) -> frozenset[str]:
        """Library routines called by *name* (e.g. ``MPI_Allreduce``)."""
        return self.external_calls.get(name, frozenset())

    def recursive_functions(self) -> frozenset[str]:
        """Functions participating in any call cycle (incl. self-recursion)."""
        out: set[str] = set()
        for scc in nx.strongly_connected_components(self.graph):
            if len(scc) > 1:
                out |= scc
            else:
                (only,) = scc
                if self.graph.has_edge(only, only):
                    out.add(only)
        return frozenset(out)

    @property
    def has_recursion(self) -> bool:
        """True when any recursion cycle exists."""
        return bool(self.recursive_functions())

    def topological_order(self) -> list[str]:
        """Reverse-topological (callee-first) order; raises on recursion."""
        try:
            return list(reversed(list(nx.topological_sort(self.graph))))
        except nx.NetworkXUnfeasible as exc:
            raise IRError("call graph is cyclic (recursive program)") from exc

    def reachable_from(self, entry: str) -> frozenset[str]:
        """Functions reachable from *entry* (entry included)."""
        if entry not in self.graph:
            return frozenset()
        return frozenset(nx.descendants(self.graph, entry)) | {entry}

    def transitive_externals(self, entry: str) -> frozenset[str]:
        """Library routines reachable (transitively) from *entry*."""
        out: set[str] = set()
        for fn in self.reachable_from(entry):
            out |= self.externals_of(fn)
        return frozenset(out)


def build_callgraph(program: Program) -> CallGraph:
    """Build the call graph of *program*."""
    graph = nx.DiGraph()
    external: dict[str, frozenset[str]] = {}
    defined = program.defined_names()
    for fn in program:
        graph.add_node(fn.name)
    for fn in program:
        callees = fn.callees()
        external[fn.name] = frozenset(callees - defined)
        for callee in callees & defined:
            graph.add_edge(fn.name, callee)
    return CallGraph(graph, external)
