"""Structural validation of programs.

Checks performed at finalization time, before any analysis or execution:

* every called program function exists or is recognizably external
  (externals must look like library routines: ``MPI_*`` or registered via
  the library database at run time — here we only check program calls);
* ``break``/``continue`` only appear inside loops;
* loop/branch ids were assigned;
* arity of calls to program-defined functions matches the definition.

These checks keep interpreter errors early and comprehensible rather than
failing deep inside a measurement sweep.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import IRValidationError
from .expr import Call, Expr
from .program import Program
from .stmt import Break, Continue, For, If, Stmt, While


def _check_break_continue(body: Sequence[Stmt], in_loop: bool, fn: str) -> None:
    for stmt in body:
        if isinstance(stmt, (Break, Continue)) and not in_loop:
            kind = "break" if isinstance(stmt, Break) else "continue"
            raise IRValidationError(f"'{kind}' outside loop in function '{fn}'")
        if isinstance(stmt, (For, While)):
            _check_break_continue(stmt.body, True, fn)
        elif isinstance(stmt, If):
            _check_break_continue(stmt.then_body, in_loop, fn)
            _check_break_continue(stmt.else_body, in_loop, fn)


def _iter_exprs(body: Sequence[Stmt]):
    for stmt in body:
        for node in stmt.walk():
            for expr in node.exprs():
                yield from expr.walk()


def validate_program(program: Program) -> None:
    """Validate *program*, raising :class:`IRValidationError` on problems."""
    defined = program.defined_names()
    for fn in program:
        _check_break_continue(fn.body, False, fn.name)
        for loop in fn.loops():
            if getattr(loop, "loop_id", -1) < 0:
                raise IRValidationError(
                    f"loop without id in function '{fn.name}' (not finalized?)"
                )
        for branch in fn.branches():
            if branch.branch_id < 0:
                raise IRValidationError(
                    f"branch without id in function '{fn.name}' (not finalized?)"
                )
        for expr in _iter_exprs(fn.body):
            if isinstance(expr, Call) and expr.callee in defined:
                target = program.function(expr.callee)
                if len(expr.args) != len(target.params):
                    raise IRValidationError(
                        f"call to '{expr.callee}' in '{fn.name}' passes "
                        f"{len(expr.args)} args, definition takes "
                        f"{len(target.params)}"
                    )


def check_expr_closed(expr: Expr, known: frozenset[str]) -> frozenset[str]:
    """Return free variables of *expr* not present in *known* (helper for
    diagnostics and the interpreter fast paths)."""
    return expr.free_vars() - known
