"""Natural-loop detection and the loop-nesting forest.

Perf-Taint's analysis is defined over *natural loops* (paper section 4.1):
single-header loops identified by back edges ``u -> v`` where ``v`` dominates
``u``.  Irreducible control flow (a retreating edge into a block that does
not dominate its source) is detected and reported, matching the paper's
footnote 2 — such loops are out of scope and can be normalized by node
splitting.

The loop nesting forest drives the iteration-volume calculus of section 4.2:
nesting multiplies counts, sequencing adds them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .cfg import CFG, build_cfg
from .dominators import dominates, immediate_dominators
from .program import Function


@dataclass
class NaturalLoop:
    """One natural loop of a CFG.

    ``header`` is the single entry block; ``body`` the set of blocks in the
    loop (header included); ``ast_loop_id`` links back to the structural
    ``For``/``While`` that produced the header (or -1 if none).
    """

    header: int
    body: frozenset[int]
    back_edges: tuple[tuple[int, int], ...]
    ast_loop_id: int = -1
    parent: int | None = None  # index of parent loop in the forest list
    children: list[int] = field(default_factory=list)

    @property
    def depth_key(self) -> int:
        """Sort key: smaller bodies are more deeply nested."""
        return len(self.body)


@dataclass
class LoopForest:
    """All natural loops of one function plus their nesting relations."""

    function: str
    loops: list[NaturalLoop]
    irreducible_edges: tuple[tuple[int, int], ...]

    @property
    def is_reducible(self) -> bool:
        """True when no irreducible (non-natural) retreating edge exists."""
        return not self.irreducible_edges

    def roots(self) -> list[int]:
        """Indices of top-level (outermost) loops."""
        return [i for i, lp in enumerate(self.loops) if lp.parent is None]

    def by_ast_id(self) -> dict[int, NaturalLoop]:
        """Map AST loop ids to natural loops (only loops with known ids)."""
        return {lp.ast_loop_id: lp for lp in self.loops if lp.ast_loop_id >= 0}

    def nesting_depth(self, idx: int) -> int:
        """1-based nesting depth of loop *idx*."""
        depth = 1
        cur = self.loops[idx].parent
        while cur is not None:
            depth += 1
            cur = self.loops[cur].parent
        return depth


def _loop_body(cfg: CFG, header: int, tails: list[int]) -> frozenset[int]:
    """Blocks of the natural loop with *header* and back-edge sources *tails*.

    Standard algorithm: the body is header plus every block that can reach a
    tail without passing through the header (walk predecessors backwards).
    """
    body: set[int] = {header}
    stack = [t for t in tails if t != header]
    body.update(stack)
    preds: dict[int, list[int]] = {}
    for src, dst in cfg.edges():
        preds.setdefault(dst, []).append(src)
    while stack:
        node = stack.pop()
        for pred in preds.get(node, ()):
            if pred not in body:
                body.add(pred)
                stack.append(pred)
    return frozenset(body)


def find_natural_loops(cfg: CFG) -> LoopForest:
    """Identify all natural loops of *cfg* and build the nesting forest."""
    idom = immediate_dominators(cfg)
    reachable = set(idom)

    # Retreating edges: classify via DFS numbering (an edge to an ancestor in
    # the DFS tree).  Back edges are retreating edges whose target dominates
    # the source; the rest are irreducible entries.
    back: dict[int, list[int]] = {}
    irreducible: list[tuple[int, int]] = []
    for src, dst in cfg.edges():
        if src not in reachable or dst not in reachable:
            continue
        if dominates(idom, cfg.entry, dst, src):
            back.setdefault(dst, []).append(src)
        elif _is_retreating(cfg, src, dst):
            irreducible.append((src, dst))

    loops: list[NaturalLoop] = []
    for header, tails in back.items():
        body = _loop_body(cfg, header, tails)
        ast_id = cfg.blocks[header].loop_id
        loops.append(
            NaturalLoop(
                header=header,
                body=body,
                back_edges=tuple((t, header) for t in tails),
                ast_loop_id=ast_id,
            )
        )

    # Nesting: loop A is nested in B iff A.header in B.body and A != B.
    # Sort by body size so parents (larger) come later; pick the smallest
    # enclosing loop as parent.
    order = sorted(range(len(loops)), key=lambda i: loops[i].depth_key)
    for pos, i in enumerate(order):
        inner = loops[i]
        best: int | None = None
        best_size = None
        for j in order[pos + 1 :]:
            outer = loops[j]
            if inner.header in outer.body and inner.body <= outer.body:
                if best_size is None or len(outer.body) < best_size:
                    best = j
                    best_size = len(outer.body)
        if best is not None:
            inner.parent = best
            loops[best].children.append(i)

    return LoopForest(cfg.function, loops, tuple(irreducible))


def _is_retreating(cfg: CFG, src: int, dst: int) -> bool:
    """True iff ``src -> dst`` is a retreating edge (dst is a DFS ancestor)."""
    # DFS from entry, recording entry/exit times.
    tin: dict[int, int] = {}
    tout: dict[int, int] = {}
    clock = 0
    stack: list[tuple[int, int]] = [(cfg.entry, 0)]
    tin[cfg.entry] = clock
    clock += 1
    while stack:
        bid, idx = stack[-1]
        succs = cfg.blocks[bid].succs
        if idx < len(succs):
            stack[-1] = (bid, idx + 1)
            nxt = succs[idx]
            if nxt not in tin:
                tin[nxt] = clock
                clock += 1
                stack.append((nxt, 0))
        else:
            tout[bid] = clock
            clock += 1
            stack.pop()
    if src not in tin or dst not in tin:
        return False
    return tin[dst] <= tin[src] and tout.get(src, 0) <= tout.get(dst, 0)


def loop_forest(fn: Function) -> LoopForest:
    """Convenience: CFG + natural loops for a structured function."""
    return find_natural_loops(build_cfg(fn))
