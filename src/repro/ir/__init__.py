"""Program intermediate representation.

This package stands in for LLVM IR in the original Perf-Taint: a small
structured imperative language with functions, natural loops, branches,
arrays, calls, and cost intrinsics, plus the classic analyses the paper
relies on (CFG, dominators, natural loops, call graph).

Most users build programs through :class:`ProgramBuilder`::

    from repro.ir import ProgramBuilder

    pb = ProgramBuilder()
    with pb.function("main", ["n"]) as f:
        with f.for_("i", 0, f.var("n")):
            f.work(1)
    program = pb.build(entry="main")
"""

from .builder import (
    FunctionBuilder,
    ProgramBuilder,
    add,
    and_,
    as_expr,
    binop,
    call,
    const,
    div,
    eq,
    floordiv,
    ge,
    gt,
    intrinsic,
    le,
    load,
    log2,
    lt,
    max_,
    mem_work,
    min_,
    mod,
    mul,
    ne,
    neg,
    not_,
    or_,
    pow_,
    sqrt,
    sub,
    var,
    work,
)
from .callgraph import CallGraph, build_callgraph
from .cfg import CFG, BasicBlock, build_cfg
from .dominators import dominators, immediate_dominators
from .expr import (
    BINARY_OPS,
    COST_INTRINSICS,
    INTRINSICS,
    UNARY_OPS,
    BinOp,
    Call,
    Const,
    Expr,
    Intrinsic,
    Load,
    UnOp,
    Var,
)
from .loops import LoopForest, NaturalLoop, find_natural_loops, loop_forest
from .printer import format_expr, format_function, format_program
from .program import Function, Program
from .stmt import (
    Assign,
    Break,
    Continue,
    ExprStmt,
    For,
    If,
    Return,
    Stmt,
    Store,
    While,
    assigned_names,
    iter_branches,
    iter_loops,
)
from .validate import validate_program

__all__ = [
    "BINARY_OPS",
    "COST_INTRINSICS",
    "INTRINSICS",
    "UNARY_OPS",
    "Assign",
    "BasicBlock",
    "BinOp",
    "Break",
    "CFG",
    "Call",
    "CallGraph",
    "Const",
    "Continue",
    "Expr",
    "ExprStmt",
    "For",
    "Function",
    "FunctionBuilder",
    "If",
    "Intrinsic",
    "Load",
    "LoopForest",
    "NaturalLoop",
    "Program",
    "ProgramBuilder",
    "Return",
    "Stmt",
    "Store",
    "UnOp",
    "Var",
    "While",
    "add",
    "and_",
    "as_expr",
    "assigned_names",
    "binop",
    "build_callgraph",
    "build_cfg",
    "call",
    "const",
    "div",
    "dominators",
    "eq",
    "find_natural_loops",
    "floordiv",
    "format_expr",
    "format_function",
    "format_program",
    "ge",
    "gt",
    "immediate_dominators",
    "intrinsic",
    "iter_branches",
    "iter_loops",
    "le",
    "load",
    "log2",
    "loop_forest",
    "lt",
    "max_",
    "mem_work",
    "min_",
    "mod",
    "mul",
    "ne",
    "neg",
    "not_",
    "or_",
    "pow_",
    "sqrt",
    "sub",
    "validate_program",
    "var",
    "work",
]
